//! End-to-end benchmarks: one small simulation run per exchange discipline.
//!
//! These measure the cost of the whole simulator (event loop, scheduling,
//! ring search, metrics) and let regressions in any layer show up as a single
//! number per discipline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exchange::ExchangePolicy;
use sim::{SimConfig, Simulation};

fn bench_config() -> SimConfig {
    let mut config = SimConfig::quick_test();
    config.num_peers = 40;
    config.sim_duration_s = 2_000.0;
    config
}

fn bench_disciplines(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation_run");
    group.sample_size(10);
    for policy in ExchangePolicy::paper_set() {
        group.bench_with_input(
            BenchmarkId::new("discipline", policy.label()),
            &policy,
            |b, policy| {
                b.iter(|| {
                    let mut config = bench_config();
                    config.discipline = *policy;
                    Simulation::new(config, 3).run()
                });
            },
        );
    }
    group.finish();
}

fn bench_system_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation_size");
    group.sample_size(10);
    for peers in [20usize, 40, 80] {
        group.bench_with_input(BenchmarkId::new("peers", peers), &peers, |b, peers| {
            b.iter(|| {
                let mut config = bench_config();
                config.num_peers = *peers;
                Simulation::new(config, 5).run()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_disciplines, bench_system_size);
criterion_main!(benches);
