//! Micro-benchmarks of the exchange ring search on synthetic request graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use des::DetRng;
use exchange::{RequestGraph, RingPreference, RingSearch, SearchPolicy};

/// Builds a random request graph with `peers` peers and `edges` requests.
fn random_graph(peers: u32, edges: usize, seed: u64) -> RequestGraph<u32, u32> {
    let mut rng = DetRng::seed_from(seed);
    let mut graph = RequestGraph::new();
    while graph.len() < edges {
        let requester = rng.gen_range(0..peers);
        let provider = rng.gen_range(0..peers);
        if requester == provider {
            continue;
        }
        let object = rng.gen_range(0u32..1_000);
        graph.add_request(requester, provider, object);
    }
    graph
}

fn bench_ring_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring_search");
    group.sample_size(20);
    for &(peers, edges) in &[(50u32, 300usize), (200, 1_200), (200, 6_000)] {
        let graph = random_graph(peers, edges, 7);
        let wants: Vec<u32> = (0..6).map(|i| i * 37 % 1_000).collect();
        for max_ring in [2usize, 5] {
            let policy = SearchPolicy::new(max_ring, RingPreference::ShorterFirst);
            let search = RingSearch::new(policy)
                .with_expansion_budget(6_000)
                .with_fanout(16);
            group.bench_with_input(
                BenchmarkId::new(
                    format!("peers{peers}_edges{edges}"),
                    format!("max_ring{max_ring}"),
                ),
                &graph,
                |b, graph| {
                    b.iter(|| {
                        // Ownership oracle: a third of peers "own" any given object.
                        search.find(graph, 0, &wants, |p, o| (p + o) % 3 == 0)
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ring_search);
criterion_main!(benches);
