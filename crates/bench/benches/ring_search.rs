//! Micro-benchmarks of the exchange ring search on synthetic request graphs,
//! including the cached-vs-fresh comparison of the incremental engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use des::DetRng;
use exchange::{RequestGraph, RingPreference, RingSearch, SearchPolicy};
use sim::RingCandidateCache;
use workload::{ObjectId, PeerId};

/// Builds a random request graph with `peers` peers and `edges` requests.
fn random_graph(peers: u32, edges: usize, seed: u64) -> RequestGraph<u32, u32> {
    let mut rng = DetRng::seed_from(seed);
    let mut graph = RequestGraph::new();
    while graph.len() < edges {
        let requester = rng.gen_range(0..peers);
        let provider = rng.gen_range(0..peers);
        if requester == provider {
            continue;
        }
        let object = rng.gen_range(0u32..1_000);
        graph.add_request(requester, provider, object);
    }
    graph
}

fn bench_ring_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring_search");
    group.sample_size(20);
    for &(peers, edges) in &[(50u32, 300usize), (200, 1_200), (200, 6_000)] {
        let graph = random_graph(peers, edges, 7);
        let wants: Vec<u32> = (0..6).map(|i| i * 37 % 1_000).collect();
        for max_ring in [2usize, 5] {
            let policy = SearchPolicy::new(max_ring, RingPreference::ShorterFirst);
            let search = RingSearch::new(policy)
                .with_expansion_budget(6_000)
                .with_fanout(16);
            group.bench_with_input(
                BenchmarkId::new(
                    format!("peers{peers}_edges{edges}"),
                    format!("max_ring{max_ring}"),
                ),
                &graph,
                |b, graph| {
                    b.iter(|| {
                        // Ownership oracle: a third of peers "own" any given object.
                        search.find(graph, 0, &wants, |p, o| (p + o) % 3 == 0)
                    });
                },
            );
        }
    }
    group.finish();
}

/// Builds a random request graph over typed ids (the cache is typed to the
/// simulator's `PeerId`/`ObjectId`).
fn random_typed_graph(peers: u32, edges: usize, seed: u64) -> RequestGraph<PeerId, ObjectId> {
    let mut rng = DetRng::seed_from(seed);
    let mut graph = RequestGraph::new();
    while graph.len() < edges {
        let requester = rng.gen_range(0..peers);
        let provider = rng.gen_range(0..peers);
        if requester == provider {
            continue;
        }
        let object = rng.gen_range(0u32..1_000);
        graph.add_request(
            PeerId::new(requester),
            PeerId::new(provider),
            ObjectId::new(object),
        );
    }
    graph.take_dirty();
    graph
}

/// Scheduling-round workload: repeated ring queries at rotating providers
/// (three per round, like the scheduling loop probing a provider more than
/// once) interleaved with request-graph deltas every few rounds.  Compares
/// a fresh BFS per query against the `RingCandidateCache`.
fn bench_cached_vs_fresh(c: &mut Criterion) {
    const PEERS: u32 = 200;
    const EDGES: usize = 6_000; // paper-sized IRQ load (Table II scale)
    const ROUNDS: usize = 200;
    const QUERIES_PER_ROUND: usize = 3;
    const DELTA_EVERY: usize = 8;

    let base = random_typed_graph(PEERS, EDGES, 7);
    let wants: Vec<Vec<ObjectId>> = (0..PEERS)
        .map(|p| {
            (0..6)
                .map(|i| ObjectId::new((p * 37 + i * 91) % 1_000))
                .collect()
        })
        .collect();
    // Ownership oracle: a third of (peer, object) pairs provide.
    let provides = |p: &PeerId, o: &ObjectId| (p.as_usize() + o.as_usize()) % 3 == 0;
    // Pre-drawn deltas so both variants replay the identical mutation stream.
    let mut rng = DetRng::seed_from(11);
    let deltas: Vec<(PeerId, PeerId, ObjectId)> = (0..ROUNDS / DELTA_EVERY + 1)
        .map(|_| {
            let requester = rng.gen_range(0..PEERS);
            let provider = (requester + 1 + rng.gen_range(0..PEERS - 1)) % PEERS;
            (
                PeerId::new(requester),
                PeerId::new(provider),
                ObjectId::new(rng.gen_range(0u32..1_000)),
            )
        })
        .collect();
    let search = RingSearch::new(SearchPolicy::new(5, RingPreference::ShorterFirst))
        .with_expansion_budget(6_000)
        .with_fanout(16);

    let mut group = c.benchmark_group("ring_search_rounds");
    group.sample_size(10);
    group.bench_function("fresh_per_query", |b| {
        b.iter(|| {
            let mut graph = base.clone();
            let mut total = 0usize;
            for round in 0..ROUNDS {
                if round % DELTA_EVERY == 0 {
                    let (r, p, o) = deltas[round / DELTA_EVERY];
                    if !graph.remove_request(r, p, o) {
                        graph.add_request(r, p, o);
                    }
                }
                let provider = PeerId::new((round as u32 * 7) % PEERS);
                for _ in 0..QUERIES_PER_ROUND {
                    total += search
                        .find(&graph, provider, &wants[provider.as_usize()], provides)
                        .len();
                }
            }
            total
        });
    });
    group.bench_function("candidate_cache", |b| {
        b.iter(|| {
            let mut graph = base.clone();
            let mut cache = RingCandidateCache::new();
            let mut total = 0usize;
            for round in 0..ROUNDS {
                if round % DELTA_EVERY == 0 {
                    let (r, p, o) = deltas[round / DELTA_EVERY];
                    if !graph.remove_request(r, p, o) {
                        graph.add_request(r, p, o);
                    }
                }
                let provider = PeerId::new((round as u32 * 7) % PEERS);
                let want = &wants[provider.as_usize()];
                for _ in 0..QUERIES_PER_ROUND {
                    cache.apply_graph_deltas(&mut graph);
                    if let Some(rings) = cache.lookup(provider, want) {
                        total += rings.len();
                    } else {
                        let trace = search.find_traced(&graph, provider, want, provides);
                        total += trace.rings.len();
                        cache.store(provider, want.clone(), trace);
                    }
                }
            }
            total
        });
    });
    group.finish();
}

criterion_group!(benches, bench_ring_search, bench_cached_vs_fresh);
criterion_main!(benches);
