//! Scale tier of the `end_to_end` benchmark: whole simulation runs at
//! 1k / 5k / 10k peers, with per-phase wall-clock timings and two speedup
//! figures per tier.
//!
//! Each tier runs the same seeded workload twice:
//!
//! * **provider-cold** — ring-cache invalidation at provider granularity
//!   and a cold `Simulation::new` per seed;
//! * **entry-warm** — entry-level invalidation plus a shared [`SimSetup`]
//!   across seeds (warm restarts).
//!
//! `speedup` compares the two (isolating what cache granularity + warm
//! restarts buy within this engine); `speedup_vs_pr3` compares `entry-warm`
//! against an externally measured run of the PR-3 engine
//! (provider-granularity cache, O(peers) provider lookups, no search
//! scratch) on the identical workload and seed, passed in via
//! `--baseline <tier>=<secs>`.
//!
//! The first seed's reports must be identical between the modes (both cache
//! granularities are exact memoisations and the warm setup seed equals the
//! first run seed) — the bench asserts this, so the headline speedup can
//! never come from computing something different.
//!
//! Usage (a bare `cargo bench` only smoke-compiles; the tiers are explicit):
//!
//! ```text
//! cargo bench --bench scale -- --tier 1k                 # CI smoke tier
//! cargo bench --bench scale -- --tier full --out BENCH_scale.json
//! cargo bench --bench scale -- --tier 10k --seeds 3
//! ```
//!
//! `--object-mb <n>` (default 1) and `--duration <secs>` (default 1800)
//! reshape the workload — the defaults reach the steady churn state, with
//! downloads completing and storage evicting continuously; `--budget` /
//! `--fanout` (defaults 512 / 8) bound the ring search the way a
//! production deployment at this scale must, keeping per-search cost and
//! cached-search dependency footprints population-independent.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use sim::{CacheGranularity, PhaseProfile, SimConfig, SimReport, SimSetup, Simulation};

/// One measured run: its report plus every timing component.
struct RunMeasurement {
    seed: u64,
    setup: Duration,
    run: Duration,
    profile: PhaseProfile,
    report: SimReport,
}

/// One mode (cache granularity × restart strategy) over all seeds.
struct ModeMeasurement {
    name: &'static str,
    runs: Vec<RunMeasurement>,
}

impl ModeMeasurement {
    fn wall(&self) -> Duration {
        self.runs.iter().map(|r| r.setup + r.run).sum()
    }
}

struct TierMeasurement {
    label: &'static str,
    peers: usize,
    config: SimConfig,
    modes: Vec<ModeMeasurement>,
    /// Externally measured wall clock of the PR-3 engine (provider-granularity
    /// cache, O(peers) lookups, no search scratch) on the identical workload
    /// and seed, passed in via `--baseline <tier>=<secs>`.
    baseline_pr3_s: Option<f64>,
}

impl TierMeasurement {
    fn speedup(&self) -> f64 {
        let baseline = self.modes[0].wall().as_secs_f64();
        let improved = self.modes[1].wall().as_secs_f64();
        if improved > 0.0 {
            baseline / improved
        } else {
            f64::INFINITY
        }
    }

    /// Speedup of the entry-warm engine's first run over the PR-3 engine.
    fn speedup_vs_pr3(&self) -> Option<f64> {
        let first = &self.modes[1].runs[0];
        let mine = (first.setup + first.run).as_secs_f64();
        self.baseline_pr3_s.filter(|_| mine > 0.0).map(|b| b / mine)
    }
}

/// Tunable workload shape of a tier (defaults live in `main`).
#[derive(Debug, Clone, Copy)]
struct TierOptions {
    object_mb: u64,
    duration_s: f64,
    budget: usize,
    fanout: usize,
}

/// The simulated system at `peers` peers: Table II parameters with a horizon
/// short enough to benchmark, objects sized so the system reaches its steady
/// churn state (downloads complete, storage evicts) within it, and the ring
/// search bounded the way a production deployment at this scale must bound
/// it — a tight expansion budget and fanout keep the per-search cost and the
/// dependency footprint of cached searches independent of the population.
/// Identical for both modes of a tier.
fn tier_config(peers: usize, options: TierOptions) -> SimConfig {
    let mut config = SimConfig::paper_defaults();
    config.num_peers = peers;
    config.workload.object_size_bytes = options.object_mb * 1024 * 1024;
    config.sim_duration_s = options.duration_s;
    config.warmup_s = options.duration_s / 3.0;
    config.ring_search_budget = options.budget;
    config.ring_search_fanout = options.fanout;
    config
}

fn run_tier(
    label: &'static str,
    peers: usize,
    seeds: &[u64],
    options: TierOptions,
) -> TierMeasurement {
    let config = tier_config(peers, options);
    eprintln!("== tier {label}: {peers} peers, {} seeds ==", seeds.len());

    let mut provider_config = config.clone();
    provider_config.ring_cache_granularity = CacheGranularity::Provider;
    let provider_cold = ModeMeasurement {
        name: "provider-cold",
        runs: seeds
            .iter()
            .map(|&seed| {
                let started = Instant::now();
                let simulation = Simulation::new(provider_config.clone(), seed);
                let setup = started.elapsed();
                let started = Instant::now();
                let (report, profile) = simulation.run_profiled();
                let run = started.elapsed();
                eprintln!(
                    "   provider-cold seed {seed}: setup {:.2}s run {:.2}s ({} events)",
                    setup.as_secs_f64(),
                    run.as_secs_f64(),
                    profile.events
                );
                RunMeasurement {
                    seed,
                    setup,
                    run,
                    profile,
                    report,
                }
            })
            .collect(),
    };

    let mut entry_config = config.clone();
    entry_config.ring_cache_granularity = CacheGranularity::Entry;
    let started = Instant::now();
    let shared_setup = SimSetup::generate(&entry_config, seeds[0]);
    let shared_setup_time = started.elapsed();
    let entry_warm = ModeMeasurement {
        name: "entry-warm",
        runs: seeds
            .iter()
            .enumerate()
            .map(|(index, &seed)| {
                // The shared setup is generated once; only the first seed's
                // row carries its cost.
                let started = Instant::now();
                let simulation = Simulation::from_setup(entry_config.clone(), &shared_setup, seed);
                let mut setup = started.elapsed();
                if index == 0 {
                    setup += shared_setup_time;
                }
                let started = Instant::now();
                let (report, profile) = simulation.run_profiled();
                let run = started.elapsed();
                eprintln!(
                    "   entry-warm    seed {seed}: setup {:.2}s run {:.2}s ({} events)",
                    setup.as_secs_f64(),
                    run.as_secs_f64(),
                    profile.events
                );
                RunMeasurement {
                    seed,
                    setup,
                    run,
                    profile,
                    report,
                }
            })
            .collect(),
    };

    // Exactness guard: on the shared setup seed both modes simulate the
    // identical system, so their reports must agree bit for bit.
    let a = &provider_cold.runs[0].report;
    let b = &entry_warm.runs[0].report;
    assert_eq!(
        (a.completed_downloads(), a.total_sessions(), a.total_rings()),
        (b.completed_downloads(), b.total_sessions(), b.total_rings()),
        "tier {label}: the two modes diverged on the shared seed — the cache \
         or warm restart is no longer exact"
    );

    let tier = TierMeasurement {
        label,
        peers,
        config,
        modes: vec![provider_cold, entry_warm],
        baseline_pr3_s: None,
    };
    eprintln!(
        "   speedup (entry-warm over provider-cold): {:.2}x",
        tier.speedup()
    );
    tier
}

fn phase_json(profile: &PhaseProfile) -> String {
    format!(
        "{{\"events\":{},\"event_loop_s\":{:.3},\"generate_requests_s\":{:.3},\
         \"scheduling_s\":{:.3},\"ring_search_s\":{:.3},\"ring_searches\":{},\
         \"transfers_s\":{:.3},\"maintenance_s\":{:.3}}}",
        profile.events,
        profile.event_loop.as_secs_f64(),
        profile.generate_requests.as_secs_f64(),
        profile.scheduling.as_secs_f64(),
        profile.ring_search.as_secs_f64(),
        profile.ring_searches,
        profile.transfers.as_secs_f64(),
        profile.maintenance.as_secs_f64(),
    )
}

fn to_json(tiers: &[TierMeasurement], seeds: usize) -> String {
    let mut out = String::new();
    let _ = write!(out, "{{\"bench\":\"scale\",\"seeds\":{seeds},\"tiers\":[");
    for (t, tier) in tiers.iter().enumerate() {
        if t > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"tier\":\"{}\",\"peers\":{},\"sim_seconds\":{},\"object_mb\":{},\"modes\":[",
            tier.label,
            tier.peers,
            tier.config.sim_duration_s,
            tier.config.workload.object_size_bytes / (1024 * 1024),
        );
        for (m, mode) in tier.modes.iter().enumerate() {
            if m > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"mode\":\"{}\",\"wall_s\":{:.3},\"runs\":[",
                mode.name,
                mode.wall().as_secs_f64()
            );
            for (r, run) in mode.runs.iter().enumerate() {
                if r > 0 {
                    out.push(',');
                }
                let cache = run.report.ring_cache_stats();
                let _ = write!(
                    out,
                    "{{\"seed\":{},\"setup_s\":{:.3},\"run_s\":{:.3},\"phases\":{},\
                     \"ring_cache\":{{\"hits\":{},\"misses\":{},\"invalidations\":{}}},\
                     \"completed_downloads\":{},\"total_sessions\":{},\"total_rings\":{}}}",
                    run.seed,
                    run.setup.as_secs_f64(),
                    run.run.as_secs_f64(),
                    phase_json(&run.profile),
                    cache.hits,
                    cache.misses,
                    cache.invalidations,
                    run.report.completed_downloads(),
                    run.report.total_sessions(),
                    run.report.total_rings(),
                );
            }
            let _ = write!(out, "]}}");
        }
        let _ = write!(out, "],\"speedup\":{:.3}", tier.speedup());
        if let (Some(baseline), Some(vs)) = (tier.baseline_pr3_s, tier.speedup_vs_pr3()) {
            let _ = write!(
                out,
                ",\"baseline_pr3_run_s\":{baseline:.3},\"speedup_vs_pr3\":{vs:.3}"
            );
        }
        let _ = write!(out, "}}");
    }
    let _ = write!(out, "]}}");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tier_arg: Option<String> = None;
    let mut out: Option<String> = None;
    let mut seeds: u64 = 2;
    let mut options = TierOptions {
        object_mb: 1,
        duration_s: 1_800.0,
        budget: 512,
        fanout: 8,
    };
    let mut baselines: Vec<(String, f64)> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match (args[i].as_str(), args.get(i + 1)) {
            ("--tier", Some(v)) => {
                tier_arg = Some(v.clone());
                i += 1;
            }
            ("--out", Some(v)) => {
                out = Some(v.clone());
                i += 1;
            }
            ("--seeds", Some(v)) => {
                if let Ok(n) = v.parse::<u64>() {
                    if n >= 1 {
                        seeds = n;
                    }
                }
                i += 1;
            }
            ("--object-mb", Some(v)) => {
                if let Ok(n) = v.parse::<u64>() {
                    if n >= 1 {
                        options.object_mb = n;
                    }
                }
                i += 1;
            }
            ("--duration", Some(v)) => {
                if let Ok(s) = v.parse::<f64>() {
                    if s > 0.0 {
                        options.duration_s = s;
                    }
                }
                i += 1;
            }
            ("--budget", Some(v)) => {
                if let Ok(n) = v.parse::<usize>() {
                    if n >= 1 {
                        options.budget = n;
                    }
                }
                i += 1;
            }
            ("--fanout", Some(v)) => {
                if let Ok(n) = v.parse::<usize>() {
                    if n >= 1 {
                        options.fanout = n;
                    }
                }
                i += 1;
            }
            ("--baseline", Some(v)) => {
                if let Some((tier, secs)) = v.split_once('=') {
                    if let Ok(secs) = secs.parse::<f64>() {
                        baselines.push((tier.to_string(), secs));
                    }
                }
                i += 1;
            }
            _ => {}
        }
        i += 1;
    }
    let Some(tier_arg) = tier_arg else {
        // `cargo bench` with no arguments (or `--no-run`) must stay cheap:
        // the tiers run minutes each and are requested explicitly.
        eprintln!(
            "scale bench: pass `-- --tier 1k|5k|10k|full [--seeds n] [--out BENCH_scale.json]` \
             to run a tier; doing nothing."
        );
        return;
    };

    let seed_list: Vec<u64> = (1..=seeds).collect();
    let selected: Vec<(&'static str, usize)> = match tier_arg.as_str() {
        "1k" => vec![("1k", 1_000)],
        "5k" => vec![("5k", 5_000)],
        "10k" => vec![("10k", 10_000)],
        "full" => vec![("1k", 1_000), ("5k", 5_000), ("10k", 10_000)],
        other => {
            eprintln!("scale bench: unknown tier '{other}' (expected 1k|5k|10k|full)");
            std::process::exit(2);
        }
    };

    let tiers: Vec<TierMeasurement> = selected
        .into_iter()
        .map(|(label, peers)| {
            let mut tier = run_tier(label, peers, &seed_list, options);
            tier.baseline_pr3_s = baselines
                .iter()
                .find(|(t, _)| t == label)
                .map(|(_, secs)| *secs);
            if let Some(vs) = tier.speedup_vs_pr3() {
                eprintln!("   speedup vs PR-3 engine: {vs:.2}x");
            }
            tier
        })
        .collect();

    let json = to_json(&tiers, seed_list.len());
    match out {
        Some(path) => {
            std::fs::write(&path, &json).unwrap_or_else(|e| {
                eprintln!("scale bench: cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("scale bench: wrote {path}");
        }
        None => println!("{json}"),
    }
}
