//! Scale tier of the `end_to_end` benchmark: whole simulation runs at
//! 1k / 5k / 10k / 100k peers, with per-phase wall-clock timings and named
//! speedup figures per tier.  The `churn-10k` tier re-runs the 10k workload
//! under full population dynamics (session churn, a mid-run catastrophe, a
//! flash crowd, and a heterogeneous capacity-class mix) so the cost of the
//! departure/rejoin teardown machinery is tracked by the regression gate.
//!
//! Each tier runs the same seeded workload in up to three modes:
//!
//! * **provider-cold** — ring-cache invalidation at provider granularity
//!   and a cold `Simulation::new` per seed (skipped at the 100k tier, where
//!   the provider-granularity engine is pointlessly slow);
//! * **entry-warm** — entry-level invalidation plus a shared [`SimSetup`]
//!   across seeds (warm restarts);
//! * **entry-warm-sharded** — entry-warm with `SimConfig::shards` set from
//!   `--shards N` (only when N > 1).  The bench asserts the sharded report
//!   is **bit-identical** to entry-warm on the shared seed — the nightly CI
//!   workflow runs exactly this assertion at the 10k tier.
//!
//! `speedup` compares provider-cold to entry-warm (what cache granularity +
//! warm restarts buy); `speedup_sharded` compares entry-warm to the sharded
//! mode (what the scoped worker pool buys — meaningful only on multi-core
//! hosts, so the JSON also records `host_parallelism`); `speedup_vs_pr3`
//! compares entry-warm against an externally measured PR-3-engine run
//! passed in via `--baseline <tier>=<secs>`.
//!
//! Usage (a bare `cargo bench` only smoke-compiles; the tiers are explicit):
//!
//! ```text
//! cargo bench --bench scale -- --tier 1k                 # CI smoke tier
//! cargo bench --bench scale -- --tier all --out BENCH_scale.json
//! cargo bench --bench scale -- --tier 10k --seeds 1 --shards 8
//! cargo bench --bench scale -- --tier churn-10k --shards 8
//! cargo bench --bench scale -- --tier 100k --shards 8    # always 1 seed
//! cargo bench --bench scale -- --tier multicore --shards 8 \
//!     --out BENCH_scale_multicore.json                   # nightly speedup job
//! ```
//!
//! (`full` is the 1k/5k/10k subset; `all` adds the churn-10k and 100k
//! tiers, producing the complete checked-in `BENCH_scale.json` in one
//! invocation.)
//!
//! The JSON also records `calibration_ops_per_s` — the host's rate on a
//! fixed CPU-bound reference loop ([`bench_support::calibrate_ops_per_s`])
//! — so the CI regression gate can compare calibrated event rates across
//! runners of different speeds instead of absolute seconds.
//!
//! `--object-mb <n>` (default 1) and `--duration <secs>` (default 1800)
//! reshape the workload — the defaults reach the steady churn state, with
//! downloads completing and storage evicting continuously; `--budget` /
//! `--fanout` (defaults 512 / 8) bound the ring search the way a
//! production deployment at this scale must, keeping per-search cost and
//! cached-search dependency footprints population-independent.
//!
//! **Checkpoint mode** (kill-and-resume drills): `--checkpoint-every <secs>
//! --checkpoint-path <file>` runs one entry-granularity simulation of the
//! selected tier (first seed, `--shards` honoured), writing its latest
//! snapshot to `<file>` every interval — atomically, via a temp file and
//! rename, so a `SIGKILL` mid-write still leaves a complete checkpoint —
//! and prints a fingerprint JSON.  `--resume-from <file>` restores that
//! snapshot under the identical tier flags, runs to the horizon, and prints
//! the **same** fingerprint JSON: a killed-then-resumed run must produce
//! output byte-identical to an uninterrupted one (the CI smoke asserts
//! exactly this with `diff`).  The two flags combine — a resumed run keeps
//! writing fresh checkpoints past the restored time, which is how the
//! preemption-resilient nightly 100k job survives repeated runner evictions.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use sim::{
    CacheGranularity, CapacityClass, CatastropheConfig, ChurnConfig, ClassMix, FlashCrowdConfig,
    PhaseProfile, SimConfig, SimReport, SimSetup, Simulation,
};

/// One measured run: its report plus every timing component.
struct RunMeasurement {
    seed: u64,
    setup: Duration,
    run: Duration,
    profile: PhaseProfile,
    report: SimReport,
}

/// One mode (cache granularity × restart strategy × shards) over all seeds.
struct ModeMeasurement {
    name: &'static str,
    runs: Vec<RunMeasurement>,
}

impl ModeMeasurement {
    fn wall(&self) -> Duration {
        self.runs.iter().map(|r| r.setup + r.run).sum()
    }
}

struct TierMeasurement {
    label: &'static str,
    peers: usize,
    config: SimConfig,
    modes: Vec<ModeMeasurement>,
    /// Externally measured wall clock of the PR-3 engine (provider-granularity
    /// cache, O(peers) lookups, no search scratch) on the identical workload
    /// and seed, passed in via `--baseline <tier>=<secs>`.
    baseline_pr3_s: Option<f64>,
}

impl TierMeasurement {
    fn mode(&self, name: &str) -> Option<&ModeMeasurement> {
        self.modes.iter().find(|m| m.name == name)
    }

    fn ratio(slow: &ModeMeasurement, fast: &ModeMeasurement) -> f64 {
        let fast_wall = fast.wall().as_secs_f64();
        if fast_wall > 0.0 {
            slow.wall().as_secs_f64() / fast_wall
        } else {
            f64::INFINITY
        }
    }

    /// Entry-warm over provider-cold (cache granularity + warm restarts).
    fn speedup(&self) -> Option<f64> {
        Some(Self::ratio(
            self.mode("provider-cold")?,
            self.mode("entry-warm")?,
        ))
    }

    /// Sharded entry-warm over sequential entry-warm.
    fn speedup_sharded(&self) -> Option<f64> {
        Some(Self::ratio(
            self.mode("entry-warm")?,
            self.mode("entry-warm-sharded")?,
        ))
    }

    /// Speedup of the entry-warm engine's first run over the PR-3 engine.
    fn speedup_vs_pr3(&self) -> Option<f64> {
        let first = &self.mode("entry-warm")?.runs[0];
        let mine = (first.setup + first.run).as_secs_f64();
        self.baseline_pr3_s.filter(|_| mine > 0.0).map(|b| b / mine)
    }
}

/// Tunable workload shape of a tier (defaults live in `main`).
#[derive(Debug, Clone, Copy)]
struct TierOptions {
    object_mb: u64,
    duration_s: f64,
    budget: usize,
    fanout: usize,
    shards: usize,
}

/// The simulated system at `peers` peers: Table II parameters with a horizon
/// short enough to benchmark, objects sized so the system reaches its steady
/// churn state (downloads complete, storage evicts) within it, and the ring
/// search bounded the way a production deployment at this scale must bound
/// it — a tight expansion budget and fanout keep the per-search cost and the
/// dependency footprint of cached searches independent of the population.
/// Identical for all modes of a tier.
fn tier_config(peers: usize, options: TierOptions) -> SimConfig {
    let mut config = SimConfig::paper_defaults();
    config.num_peers = peers;
    config.workload.object_size_bytes = options.object_mb * 1024 * 1024;
    config.sim_duration_s = options.duration_s;
    config.warmup_s = options.duration_s / 3.0;
    config.ring_search_budget = options.budget;
    config.ring_search_fanout = options.fanout;
    config
}

/// Full population dynamics for the `churn-10k` tier: mean sessions long
/// enough that downloads still complete (they finish in well under a mean
/// session at bench object sizes), plus a mid-horizon catastrophe, a flash
/// crowd, and a fast/medium/slow class mix — the worst case for the
/// departure-teardown and cache-invalidation paths.
fn population_config(config: &mut SimConfig, options: TierOptions) {
    config.churn = Some(ChurnConfig {
        mean_session_s: options.duration_s * 2.0 / 3.0,
        mean_downtime_s: options.duration_s / 6.0,
    });
    config.catastrophe = Some(CatastropheConfig {
        at_s: options.duration_s / 2.0,
        top_k: config.num_peers / 200,
    });
    config.flash_crowd = Some(FlashCrowdConfig {
        at_s: options.duration_s / 3.0,
        requesters: config.num_peers / 20,
        seed_holders: 8,
    });
    config.classes = ClassMix::weighted([
        (CapacityClass::Fast, 0.25),
        (CapacityClass::Medium, 0.5),
        (CapacityClass::Slow, 0.25),
    ]);
}

fn measure_run(
    name: &str,
    config: &SimConfig,
    setup: Option<&SimSetup>,
    seed: u64,
) -> RunMeasurement {
    let started = Instant::now();
    let simulation = match setup {
        Some(shared) => Simulation::from_setup(config.clone(), shared, seed),
        None => Simulation::new(config.clone(), seed),
    };
    let setup_time = started.elapsed();
    let started = Instant::now();
    let (report, profile) = simulation.run_profiled();
    let run = started.elapsed();
    eprintln!(
        "   {name:<22} seed {seed}: setup {:.2}s run {:.2}s ({} events)",
        setup_time.as_secs_f64(),
        run.as_secs_f64(),
        profile.events
    );
    RunMeasurement {
        seed,
        setup: setup_time,
        run,
        profile,
        report,
    }
}

fn fingerprint(report: &SimReport) -> (u64, u64, u64, sim::RingCacheStats) {
    (
        report.completed_downloads(),
        report.total_sessions(),
        report.total_rings(),
        report.ring_cache_stats(),
    )
}

fn run_tier(
    label: &'static str,
    peers: usize,
    population: bool,
    seeds: &[u64],
    options: TierOptions,
) -> TierMeasurement {
    let mut config = tier_config(peers, options);
    if population {
        population_config(&mut config, options);
    }
    // The 100k tier runs one seed and skips the provider-cold mode: at 10⁵
    // peers the provider-granularity engine adds tens of minutes without
    // telling us anything the 10k tier did not.
    let heavy = peers >= 100_000;
    let seeds: Vec<u64> = if heavy {
        vec![seeds[0]]
    } else {
        seeds.to_vec()
    };
    eprintln!("== tier {label}: {peers} peers, {} seeds ==", seeds.len());

    let mut modes = Vec::new();
    if !heavy {
        let mut provider_config = config.clone();
        provider_config.ring_cache_granularity = CacheGranularity::Provider;
        modes.push(ModeMeasurement {
            name: "provider-cold",
            runs: seeds
                .iter()
                .map(|&seed| measure_run("provider-cold", &provider_config, None, seed))
                .collect(),
        });
    }

    let mut entry_config = config.clone();
    entry_config.ring_cache_granularity = CacheGranularity::Entry;
    let started = Instant::now();
    let shared_setup = SimSetup::generate(&entry_config, seeds[0]);
    let shared_setup_time = started.elapsed();
    let entry_runs: Vec<RunMeasurement> = seeds
        .iter()
        .enumerate()
        .map(|(index, &seed)| {
            // The shared setup is generated once; only the first seed's row
            // carries its cost.
            let mut run = measure_run("entry-warm", &entry_config, Some(&shared_setup), seed);
            if index == 0 {
                run.setup += shared_setup_time;
            }
            run
        })
        .collect();
    modes.push(ModeMeasurement {
        name: "entry-warm",
        runs: entry_runs,
    });

    if options.shards > 1 {
        let mut sharded_config = entry_config.clone();
        sharded_config.shards = options.shards;
        let runs: Vec<RunMeasurement> = seeds
            .iter()
            .map(|&seed| {
                measure_run(
                    "entry-warm-sharded",
                    &sharded_config,
                    Some(&shared_setup),
                    seed,
                )
            })
            .collect();
        modes.push(ModeMeasurement {
            name: "entry-warm-sharded",
            runs,
        });
    }

    let tier = TierMeasurement {
        label,
        peers,
        config,
        modes,
        baseline_pr3_s: None,
    };

    // Exactness guards: on the shared setup seed every mode simulates the
    // identical system, so all reports must agree bit for bit.
    let entry = &tier.mode("entry-warm").expect("always measured").runs[0];
    if let Some(provider) = tier.mode("provider-cold") {
        assert_eq!(
            (
                provider.runs[0].report.completed_downloads(),
                provider.runs[0].report.total_sessions(),
                provider.runs[0].report.total_rings()
            ),
            (
                entry.report.completed_downloads(),
                entry.report.total_sessions(),
                entry.report.total_rings()
            ),
            "tier {label}: granularities diverged on the shared seed — the \
             cache or warm restart is no longer exact"
        );
    }
    if let Some(sharded) = tier.mode("entry-warm-sharded") {
        assert_eq!(
            fingerprint(&sharded.runs[0].report),
            fingerprint(&entry.report),
            "tier {label}: the sharded report diverged from the sequential \
             engine on the shared seed — the deterministic merge is broken"
        );
        // Consumed-only accounting: the sharded engine charges only the
        // planned searches the merge actually consumed (plus inline
        // fallbacks), so its search count must equal the sequential
        // engine's exactly — speculation lives in `planning_breakdown`.
        assert_eq!(
            sharded.runs[0].profile.ring_searches, entry.profile.ring_searches,
            "tier {label}: sharded ring_searches diverged from sequential — \
             speculative shard work is leaking into the search accounting"
        );
        eprintln!(
            "   sharded report bit-identical to sequential: ok \
             ({} searches planned, {} consumed)",
            sharded.runs[0].profile.planned_searches, sharded.runs[0].profile.planned_consumed
        );
    }

    if let Some(speedup) = tier.speedup() {
        eprintln!("   speedup (entry-warm over provider-cold): {speedup:.2}x");
    }
    if let Some(speedup) = tier.speedup_sharded() {
        eprintln!(
            "   speedup (shards={} over sequential): {speedup:.2}x",
            options.shards
        );
    }
    tier
}

/// The run fingerprint the kill-and-resume smoke compares: identical JSON
/// from an uninterrupted checkpointed run and from a resumed one.
fn fingerprint_json(label: &str, config: &SimConfig, seed: u64, report: &SimReport) -> String {
    let cache = report.ring_cache_stats();
    format!(
        "{{\"bench\":\"scale-checkpoint\",\"tier\":\"{label}\",\"peers\":{},\"seed\":{seed},\
         \"fingerprint\":{{\"completed_downloads\":{},\"total_sessions\":{},\"total_rings\":{},\
         \"ring_cache\":{{\"hits\":{},\"misses\":{},\"invalidations\":{}}}}}}}",
        config.num_peers,
        report.completed_downloads(),
        report.total_sessions(),
        report.total_rings(),
        cache.hits,
        cache.misses,
        cache.invalidations,
    )
}

/// Checkpoint/resume mode: one entry-granularity run of the selected tier
/// on the first seed. `--checkpoint-every <secs> --checkpoint-path <file>`
/// writes the latest snapshot every interval (atomic temp-file + rename);
/// `--resume-from <file>` restores an existing snapshot and runs to the
/// horizon. The flags **combine**: a resumed run keeps checkpointing past
/// the restored time, so a preempted nightly job can be re-dispatched any
/// number of times and always picks up from its latest snapshot. Every
/// path prints the same fingerprint JSON on success.
fn run_checkpoint_mode(
    label: &str,
    peers: usize,
    population: bool,
    seed: u64,
    options: TierOptions,
    checkpoint: Option<(f64, &str)>,
    resume_from: Option<&str>,
) -> String {
    let mut config = tier_config(peers, options);
    if population {
        population_config(&mut config, options);
    }
    config.ring_cache_granularity = CacheGranularity::Entry;
    config.shards = options.shards;
    config.checkpoint_every_s = checkpoint.map(|(every, _)| every);

    let simulation = match resume_from {
        Some(path) => {
            let bytes = std::fs::read(path).unwrap_or_else(|e| {
                eprintln!("scale bench: cannot read checkpoint {path}: {e}");
                std::process::exit(1);
            });
            let simulation = Simulation::restore(&mut &bytes[..], &config).unwrap_or_else(|e| {
                eprintln!("scale bench: cannot restore {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("== tier {label}: resuming from {path} ==");
            simulation
        }
        None => Simulation::new(config.clone(), seed),
    };
    let report = match checkpoint {
        Some((every, path)) => {
            let tmp = format!("{path}.tmp");
            eprintln!("== tier {label}: checkpointing every {every}s to {path} ==");
            simulation.run_checkpointed(every, |at, simulation| {
                let write = || -> std::io::Result<()> {
                    let mut file = std::fs::File::create(&tmp)?;
                    simulation
                        .checkpoint(&mut file)
                        .map_err(std::io::Error::other)?;
                    drop(file);
                    std::fs::rename(&tmp, path)
                };
                write().unwrap_or_else(|e| {
                    eprintln!("scale bench: cannot write checkpoint at t={at} to {path}: {e}");
                    std::process::exit(1);
                });
                eprintln!("   checkpoint at t={at} -> {path}");
            })
        }
        None => simulation.run(),
    };
    fingerprint_json(label, &config, seed, &report)
}

fn phase_json(profile: &PhaseProfile) -> String {
    // Speculative = planned by a shard worker but never consumed at merge
    // (the predicted miss was resolved by an earlier provider in the batch,
    // or the stamps moved). A hit rate of 1.0 means zero wasted searches.
    let speculative = profile.planned_searches - profile.planned_consumed;
    let plan_hit_rate = if profile.planned_searches > 0 {
        profile.planned_consumed as f64 / profile.planned_searches as f64
    } else {
        1.0
    };
    format!(
        "{{\"events\":{},\"event_loop_s\":{:.3},\"generate_requests_s\":{:.3},\
         \"scheduling_s\":{:.3},\"ring_search_s\":{:.3},\"ring_searches\":{},\
         \"shard_planning_s\":{:.3},\"planning_breakdown\":{{\
         \"true_miss_searches\":{},\"speculative_searches\":{},\
         \"plan_hit_rate\":{:.4}}},\"transfers_s\":{:.3},\"maintenance_s\":{:.3},\
         \"population_s\":{:.3}}}",
        profile.events,
        profile.event_loop.as_secs_f64(),
        profile.generate_requests.as_secs_f64(),
        profile.scheduling.as_secs_f64(),
        profile.ring_search.as_secs_f64(),
        profile.ring_searches,
        profile.shard_planning.as_secs_f64(),
        profile.planned_consumed,
        speculative,
        plan_hit_rate,
        profile.transfers.as_secs_f64(),
        profile.maintenance.as_secs_f64(),
        profile.population.as_secs_f64(),
    )
}

fn to_json(tiers: &[TierMeasurement], seeds: usize, shards: usize, calibration: f64) -> String {
    let host_parallelism =
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"bench\":\"scale\",\"seeds\":{seeds},\"shards\":{shards},\
         \"host_parallelism\":{host_parallelism},\
         \"calibration_ops_per_s\":{calibration:.0},\"tiers\":["
    );
    for (t, tier) in tiers.iter().enumerate() {
        if t > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"tier\":\"{}\",\"peers\":{},\"sim_seconds\":{},\"object_mb\":{},\"modes\":[",
            tier.label,
            tier.peers,
            tier.config.sim_duration_s,
            tier.config.workload.object_size_bytes / (1024 * 1024),
        );
        for (m, mode) in tier.modes.iter().enumerate() {
            if m > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"mode\":\"{}\",\"wall_s\":{:.3},\"runs\":[",
                mode.name,
                mode.wall().as_secs_f64()
            );
            for (r, run) in mode.runs.iter().enumerate() {
                if r > 0 {
                    out.push(',');
                }
                let cache = run.report.ring_cache_stats();
                let _ = write!(
                    out,
                    "{{\"seed\":{},\"setup_s\":{:.3},\"run_s\":{:.3},\"phases\":{},\
                     \"ring_cache\":{{\"hits\":{},\"misses\":{},\"invalidations\":{}}},\
                     \"completed_downloads\":{},\"total_sessions\":{},\"total_rings\":{}}}",
                    run.seed,
                    run.setup.as_secs_f64(),
                    run.run.as_secs_f64(),
                    phase_json(&run.profile),
                    cache.hits,
                    cache.misses,
                    cache.invalidations,
                    run.report.completed_downloads(),
                    run.report.total_sessions(),
                    run.report.total_rings(),
                );
            }
            let _ = write!(out, "]}}");
        }
        let _ = write!(out, "]");
        if let Some(speedup) = tier.speedup() {
            let _ = write!(out, ",\"speedup\":{speedup:.3}");
        }
        if let Some(speedup) = tier.speedup_sharded() {
            let _ = write!(out, ",\"speedup_sharded\":{speedup:.3}");
        }
        if let (Some(baseline), Some(vs)) = (tier.baseline_pr3_s, tier.speedup_vs_pr3()) {
            let _ = write!(
                out,
                ",\"baseline_pr3_run_s\":{baseline:.3},\"speedup_vs_pr3\":{vs:.3}"
            );
        }
        let _ = write!(out, "}}");
    }
    let _ = write!(out, "]}}");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tier_arg: Option<String> = None;
    let mut out: Option<String> = None;
    let mut seeds: u64 = 2;
    let mut options = TierOptions {
        object_mb: 1,
        duration_s: 1_800.0,
        budget: 512,
        fanout: 8,
        shards: 1,
    };
    let mut baselines: Vec<(String, f64)> = Vec::new();
    let mut checkpoint_every: Option<f64> = None;
    let mut checkpoint_path: Option<String> = None;
    let mut resume_from: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match (args[i].as_str(), args.get(i + 1)) {
            ("--tier", Some(v)) => {
                tier_arg = Some(v.clone());
                i += 1;
            }
            ("--out", Some(v)) => {
                out = Some(v.clone());
                i += 1;
            }
            ("--seeds", Some(v)) => {
                if let Ok(n) = v.parse::<u64>() {
                    if n >= 1 {
                        seeds = n;
                    }
                }
                i += 1;
            }
            ("--shards", Some(v)) => {
                if let Ok(n) = v.parse::<usize>() {
                    if n >= 1 {
                        options.shards = n;
                    }
                }
                i += 1;
            }
            ("--object-mb", Some(v)) => {
                if let Ok(n) = v.parse::<u64>() {
                    if n >= 1 {
                        options.object_mb = n;
                    }
                }
                i += 1;
            }
            ("--duration", Some(v)) => {
                if let Ok(s) = v.parse::<f64>() {
                    if s > 0.0 {
                        options.duration_s = s;
                    }
                }
                i += 1;
            }
            ("--budget", Some(v)) => {
                if let Ok(n) = v.parse::<usize>() {
                    if n >= 1 {
                        options.budget = n;
                    }
                }
                i += 1;
            }
            ("--fanout", Some(v)) => {
                if let Ok(n) = v.parse::<usize>() {
                    if n >= 1 {
                        options.fanout = n;
                    }
                }
                i += 1;
            }
            ("--baseline", Some(v)) => {
                if let Some((tier, secs)) = v.split_once('=') {
                    if let Ok(secs) = secs.parse::<f64>() {
                        baselines.push((tier.to_string(), secs));
                    }
                }
                i += 1;
            }
            ("--checkpoint-every", Some(v)) => {
                if let Ok(s) = v.parse::<f64>() {
                    if s > 0.0 && s.is_finite() {
                        checkpoint_every = Some(s);
                    }
                }
                i += 1;
            }
            ("--checkpoint-path", Some(v)) => {
                checkpoint_path = Some(v.clone());
                i += 1;
            }
            ("--resume-from", Some(v)) => {
                resume_from = Some(v.clone());
                i += 1;
            }
            _ => {}
        }
        i += 1;
    }
    let Some(tier_arg) = tier_arg else {
        // `cargo bench` with no arguments (or `--no-run`) must stay cheap:
        // the tiers run minutes each and are requested explicitly.
        eprintln!(
            "scale bench: pass `-- --tier 1k|5k|10k|churn-10k|100k|multicore|full [--seeds n] \
             [--shards n] [--out BENCH_scale.json]` to run a tier; doing nothing."
        );
        return;
    };

    let seed_list: Vec<u64> = (1..=seeds).collect();
    // (label, peers, population dynamics on?)
    let selected: Vec<(&'static str, usize, bool)> = match tier_arg.as_str() {
        "1k" => vec![("1k", 1_000, false)],
        "5k" => vec![("5k", 5_000, false)],
        "10k" => vec![("10k", 10_000, false)],
        "churn-10k" => vec![("churn-10k", 10_000, true)],
        "100k" => vec![("100k", 100_000, false)],
        // The nightly multi-core job: the two 10k-peer workloads where the
        // worker pool has real parallel work, producing the
        // `BENCH_scale_multicore.json` baseline that `bench_gate
        // --require-speedup` enforces `speedup_sharded > 1` against.
        "multicore" => vec![("10k", 10_000, false), ("churn-10k", 10_000, true)],
        "full" => vec![
            ("1k", 1_000, false),
            ("5k", 5_000, false),
            ("10k", 10_000, false),
        ],
        "all" => vec![
            ("1k", 1_000, false),
            ("5k", 5_000, false),
            ("10k", 10_000, false),
            ("churn-10k", 10_000, true),
            ("100k", 100_000, false),
        ],
        other => {
            eprintln!(
                "scale bench: unknown tier '{other}' \
                 (expected 1k|5k|10k|churn-10k|100k|multicore|full|all)"
            );
            std::process::exit(2);
        }
    };

    if checkpoint_every.is_some() || resume_from.is_some() {
        let [(label, peers, population)] = selected.as_slice() else {
            eprintln!("scale bench: checkpoint mode needs a single tier (got '{tier_arg}')");
            std::process::exit(2);
        };
        let checkpoint = match (checkpoint_every, &checkpoint_path) {
            (Some(every), Some(path)) => Some((every, path.as_str())),
            (Some(_), None) => {
                eprintln!("scale bench: --checkpoint-every needs --checkpoint-path <file>");
                std::process::exit(2);
            }
            (None, _) => None,
        };
        let json = run_checkpoint_mode(
            label,
            *peers,
            *population,
            seed_list[0],
            options,
            checkpoint,
            resume_from.as_deref(),
        );
        match out {
            Some(path) => {
                std::fs::write(&path, &json).unwrap_or_else(|e| {
                    eprintln!("scale bench: cannot write {path}: {e}");
                    std::process::exit(1);
                });
                eprintln!("scale bench: wrote {path}");
            }
            None => println!("{json}"),
        }
        return;
    }

    // Measure the machine yardstick before the tiers run: the host is idle
    // and thermally unexcited here, matching how the reference loop behaves
    // on a fresh CI runner.
    let calibration = bench_support::calibrate_ops_per_s();
    eprintln!("calibration: {:.0} reference ops/s", calibration);

    let tiers: Vec<TierMeasurement> = selected
        .into_iter()
        .map(|(label, peers, population)| {
            let mut tier = run_tier(label, peers, population, &seed_list, options);
            tier.baseline_pr3_s = baselines
                .iter()
                .find(|(t, _)| t == label)
                .map(|(_, secs)| *secs);
            if let Some(vs) = tier.speedup_vs_pr3() {
                eprintln!("   speedup vs PR-3 engine: {vs:.2}x");
            }
            tier
        })
        .collect();

    let json = to_json(&tiers, seed_list.len(), options.shards, calibration);
    match out {
        Some(path) => {
            std::fs::write(&path, &json).unwrap_or_else(|e| {
                eprintln!("scale bench: cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("scale bench: wrote {path}");
        }
        None => println!("{json}"),
    }
}
