//! Micro-benchmarks of request-tree construction and path extraction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use des::DetRng;
use exchange::{RequestGraph, RequestTree};

fn random_graph(peers: u32, edges: usize, seed: u64) -> RequestGraph<u32, u32> {
    let mut rng = DetRng::seed_from(seed);
    let mut graph = RequestGraph::new();
    while graph.len() < edges {
        let requester = rng.gen_range(0..peers);
        let provider = rng.gen_range(0..peers);
        if requester == provider {
            continue;
        }
        graph.add_request(requester, provider, rng.gen_range(0u32..500));
    }
    graph
}

fn bench_tree_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("request_tree_build");
    group.sample_size(30);
    for &edges in &[300usize, 1_200, 6_000] {
        let graph = random_graph(200, edges, 11);
        for depth in [2usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("edges{edges}"), format!("depth{depth}")),
                &graph,
                |b, graph| b.iter(|| RequestTree::build(graph, 0, depth)),
            );
        }
    }
    group.finish();
}

fn bench_path_extraction(c: &mut Criterion) {
    let graph = random_graph(200, 3_000, 13);
    let tree = RequestTree::build(&graph, 0, 4);
    let peers: Vec<u32> = tree.nodes().iter().map(|n| n.peer).collect();
    c.bench_function("request_tree_path_to_all_nodes", |b| {
        b.iter(|| {
            peers
                .iter()
                .filter_map(|p| tree.path_to(p))
                .map(|path| path.len())
                .sum::<usize>()
        });
    });
}

criterion_group!(benches, bench_tree_build, bench_path_extraction);
criterion_main!(benches);
