//! Offline stand-in for the real `serde` crate.
//!
//! The workspace builds in environments without crates.io access, so this
//! crate only re-exports the no-op `Serialize` / `Deserialize` derives from
//! the sibling `serde_derive` stub.  Config types keep their derive
//! annotations; replacing the two stubs with the real crates re-enables
//! serialization everywhere at once.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};
