//! Offline miniature stand-in for the `criterion` crate.
//!
//! The workspace builds without crates.io access, so this crate provides a
//! minimal wall-clock benchmark harness with the subset of the criterion API
//! the benches in `crates/bench/benches/` use: `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, bench_with_input, finish}`,
//! `Bencher::iter`, `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Timings are reported as `<group>/<id>: median <t> (n samples)` on stdout.
//! There is no statistical analysis, HTML report, or regression store —
//! swap in the real criterion crate for those.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group: a function name plus a
/// parameter rendered with `Display`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id of the form `name/parameter`.
    #[must_use]
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    #[must_use]
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            id: name.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
    iters_per_sample: u32,
}

impl Bencher {
    fn with_samples(n: usize) -> Self {
        Bencher {
            samples: Vec::with_capacity(n),
            target_samples: n.max(1),
            iters_per_sample: 1,
        }
    }

    /// Times `routine`, recording one sample per configured sample slot.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        while self.samples.len() < self.target_samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample.max(1));
        }
    }

    fn median(&mut self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        self.samples.sort_unstable();
        Some(self.samples[self.samples.len() / 2])
    }
}

/// A named family of related benchmarks sharing a sample-size setting.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark identified by `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::with_samples(self.sample_size);
        f(&mut bencher);
        report(&self.name, &id, &mut bencher);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::with_samples(self.sample_size);
        f(&mut bencher, input);
        report(&self.name, &id, &mut bencher);
        self
    }

    /// Ends the group (provided for API compatibility).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("").bench_function(name, f);
        self
    }
}

fn report(group: &str, id: &BenchmarkId, bencher: &mut Bencher) {
    let n = bencher.samples.len();
    match bencher.median() {
        Some(median) => {
            let label = if group.is_empty() {
                id.to_string()
            } else {
                format!("{group}/{id}")
            };
            println!("{label}: median {median:?} ({n} samples)");
        }
        None => println!("{group}/{id}: no samples recorded"),
    }
}

/// Declares a function that runs the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_with_input(BenchmarkId::new("count", 1), &2u32, |b, two| {
            b.iter(|| {
                runs += two;
                runs
            });
        });
        group.finish();
        assert_eq!(runs, 6, "3 samples x 1 iteration x input 2");
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("fanout", 16).to_string(), "fanout/16");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
