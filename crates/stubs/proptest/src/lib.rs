//! Offline miniature stand-in for the `proptest` crate.
//!
//! The workspace builds without crates.io access, so this crate implements
//! just enough of the proptest surface for the property tests in this
//! repository: range strategies over the primitive numeric types, tuple
//! strategies, `prop_map`, the `collection::{vec, hash_set, hash_map}`
//! combinators, `bool::ANY`, and the `proptest!` / `prop_assert*` macros.
//!
//! Unlike the real proptest there is no shrinking: each property runs a
//! fixed number of deterministically seeded cases (seeded from the test
//! name, so failures are reproducible run to run).

#![forbid(unsafe_code)]

use std::collections::{HashMap, HashSet};
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

/// Number of cases each `proptest!` property runs.
pub const NUM_CASES: u32 = 64;

/// Error carried out of a failing property body by the `prop_assert*` macros.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic RNG used to sample strategy values (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a property name so each test gets a stable,
    /// independent stream.
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: hash }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }
}

/// A generator of random values, the core proptest abstraction.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit() * (self.end() - self.start())
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Strategies over `bool`.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy (`proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies (`vec`, `hash_set`, `hash_map`).
pub mod collection {
    use super::{Hash, HashMap, HashSet, Range, Strategy, TestRng};

    /// Strategy for `Vec<T>` with a size drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        sizes: Range<usize>,
    }

    /// Vectors of values from `elem`, with length in `sizes`.
    pub fn vec<S: Strategy>(elem: S, sizes: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, sizes }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = sample_size(&self.sizes, rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// Strategy for `HashSet<T>` with a target size drawn from a range.
    pub struct HashSetStrategy<S> {
        elem: S,
        sizes: Range<usize>,
    }

    /// Hash sets of values from `elem`; duplicates are retried a bounded
    /// number of times, so the resulting set may be smaller than requested.
    pub fn hash_set<S>(elem: S, sizes: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy { elem, sizes }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = sample_size(&self.sizes, rng);
            let mut set = HashSet::with_capacity(n);
            let mut attempts = 0;
            while set.len() < n && attempts < n * 10 + 16 {
                set.insert(self.elem.sample(rng));
                attempts += 1;
            }
            set
        }
    }

    /// Strategy for `HashMap<K, V>` with a target size drawn from a range.
    pub struct HashMapStrategy<K, V> {
        key: K,
        value: V,
        sizes: Range<usize>,
    }

    /// Hash maps with keys from `key` and values from `value`.
    pub fn hash_map<K, V>(key: K, value: V, sizes: Range<usize>) -> HashMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Eq + Hash,
        V: Strategy,
    {
        HashMapStrategy { key, value, sizes }
    }

    impl<K, V> Strategy for HashMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Eq + Hash,
        V: Strategy,
    {
        type Value = HashMap<K::Value, V::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = sample_size(&self.sizes, rng);
            let mut map = HashMap::with_capacity(n);
            let mut attempts = 0;
            while map.len() < n && attempts < n * 10 + 16 {
                map.insert(self.key.sample(rng), self.value.sample(rng));
                attempts += 1;
            }
            map
        }
    }

    fn sample_size(sizes: &Range<usize>, rng: &mut TestRng) -> usize {
        assert!(sizes.start < sizes.end, "empty size range");
        sizes.start + rng.below((sizes.end - sizes.start) as u64) as usize
    }
}

/// The usual `use proptest::prelude::*;` imports.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, Strategy};
}

/// Runs each listed property over [`NUM_CASES`] deterministically sampled
/// inputs.  Supports the `name in strategy` argument syntax of the real
/// proptest macro (without shrinking or persisted regressions).
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __proptest_rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for __proptest_case in 0..$crate::NUM_CASES {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __proptest_rng);)+
                    let __proptest_result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let Err(e) = __proptest_result {
                        panic!(
                            "property {} failed at case {}: {}",
                            stringify!($name),
                            __proptest_case,
                            e
                        );
                    }
                }
            }
        )+
    };
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Fails the current property case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Skips the current case unless `cond` holds (stub: treated as a pass).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = super::TestRng::from_name("x");
        let mut b = super::TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in -5i64..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_sizes(xs in crate::collection::vec(0u8..10, 2..6)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert!(xs.iter().all(|x| *x < 10));
        }

        #[test]
        fn mapped_strategies_apply_function(x in (0u32..10).prop_map(|v| v * 2)) {
            prop_assert_eq!(x % 2, 0);
        }
    }
}
