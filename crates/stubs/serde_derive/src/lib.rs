//! Offline no-op stand-in for the real `serde_derive` proc-macro crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the `#[derive(Serialize, Deserialize)]` attributes scattered through the
//! config types expand to nothing.  Swapping in the real `serde` +
//! `serde_derive` (by replacing the two stub crates under `crates/stubs/`)
//! re-enables real serialization without touching any other code.

#![forbid(unsafe_code)]

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
