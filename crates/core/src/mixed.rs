//! Mixed object-and-capacity exchanges (Table I / Figure 3 of the paper).
//!
//! A peer with upload capacity but no exchangeable content can still take
//! part in an exchange by *forwarding*: a provider sends it the object it
//! wants, and it relays that object onward to other peers, who in return
//! serve the provider.  Everyone is at least as well off as in the pure
//! object exchange, and two peers that would otherwise be excluded get
//! served.  This module contains a small planner that recognises the
//! structure and produces the resulting flow assignment.

use std::collections::BTreeMap;

use crate::Key;

/// What one peer brings to a prospective mixed exchange.
#[derive(Debug, Clone, PartialEq)]
pub struct PeerSpec<P, O> {
    /// The peer.
    pub peer: P,
    /// Upload capacity available for the exchange (arbitrary rate units; the
    /// paper's example uses 5 or 10).
    pub upload_capacity: f64,
    /// Objects the peer stores and is willing to serve.
    pub has: Vec<O>,
    /// Objects the peer wants.
    pub wants: Vec<O>,
}

/// One directed flow in a mixed exchange plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Flow<P, O> {
    /// The sending peer.
    pub from: P,
    /// The receiving peer.
    pub to: P,
    /// The object carried by this flow.
    pub object: O,
    /// The rate of the flow (same units as [`PeerSpec::upload_capacity`]).
    pub rate: f64,
}

/// A complete mixed-exchange plan.
#[derive(Debug, Clone, PartialEq)]
pub struct MixedExchangePlan<P: Key, O: Key> {
    flows: Vec<Flow<P, O>>,
}

impl<P: Key, O: Key> MixedExchangePlan<P, O> {
    /// The individual flows of the plan.
    #[must_use]
    pub fn flows(&self) -> &[Flow<P, O>] {
        &self.flows
    }

    /// Total download rate each peer receives under the plan.
    #[must_use]
    pub fn download_rate_of(&self, peer: &P) -> f64 {
        self.flows
            .iter()
            .filter(|f| f.to == *peer)
            .map(|f| f.rate)
            .sum()
    }

    /// Total upload rate each peer contributes under the plan.
    #[must_use]
    pub fn upload_rate_of(&self, peer: &P) -> f64 {
        self.flows
            .iter()
            .filter(|f| f.from == *peer)
            .map(|f| f.rate)
            .sum()
    }

    /// The peers that receive data under the plan.
    #[must_use]
    pub fn served_peers(&self) -> Vec<P> {
        let mut rates: BTreeMap<P, f64> = BTreeMap::new();
        for f in &self.flows {
            *rates.entry(f.to).or_insert(0.0) += f.rate;
        }
        rates
            .into_iter()
            .filter(|(_, r)| *r > 0.0)
            .map(|(p, _)| p)
            .collect()
    }
}

/// The download rate each peer would get from the best *pure* pairwise object
/// exchange among `specs` (the baseline the mixed plan is compared against).
///
/// Two peers can exchange directly if each has an object the other wants; the
/// exchange runs at the lower of the two upload capacities.  Each peer is
/// assumed to join at most one pairwise exchange (the paper's example has a
/// single feasible pair).
#[must_use]
pub fn pure_exchange_rates<P: Key, O: Key>(specs: &[PeerSpec<P, O>]) -> BTreeMap<P, f64> {
    let mut rates: BTreeMap<P, f64> = specs.iter().map(|s| (s.peer, 0.0)).collect();
    let mut used: Vec<P> = Vec::new();
    for (i, a) in specs.iter().enumerate() {
        if used.contains(&a.peer) {
            continue;
        }
        for b in specs.iter().skip(i + 1) {
            if used.contains(&b.peer) {
                continue;
            }
            let a_serves_b = a.has.iter().any(|o| b.wants.contains(o));
            let b_serves_a = b.has.iter().any(|o| a.wants.contains(o));
            if a_serves_b && b_serves_a {
                let rate = a.upload_capacity.min(b.upload_capacity);
                rates.insert(a.peer, rate);
                rates.insert(b.peer, rate);
                used.push(a.peer);
                used.push(b.peer);
                break;
            }
        }
    }
    rates
}

/// Plans a mixed object-and-capacity exchange over `specs`, if the structure
/// of Table I is present:
///
/// * a *forwarder* that wants an object but has nothing anyone else wants;
/// * a *provider* that has the forwarder's wanted object and wants some other
///   object;
/// * one or more *suppliers* that have the provider's wanted object and also
///   want the forwarder's wanted object.
///
/// The provider sends the object to the forwarder, the forwarder relays it to
/// the suppliers (using its otherwise-idle upload capacity), and the
/// suppliers serve the provider in parallel.  Returns `None` when the pattern
/// does not apply.
#[must_use]
pub fn plan_mixed_exchange<P: Key, O: Key>(
    specs: &[PeerSpec<P, O>],
) -> Option<MixedExchangePlan<P, O>> {
    // Identify the forwarder: wants something, but owns nothing that any
    // other peer wants.
    let forwarder = specs.iter().find(|s| {
        !s.wants.is_empty()
            && specs
                .iter()
                .filter(|other| other.peer != s.peer)
                .all(|other| !s.has.iter().any(|o| other.wants.contains(o)))
    })?;
    // The object the forwarder wants, and a provider that has it.
    let (wanted, provider) = forwarder.wants.iter().find_map(|o| {
        specs
            .iter()
            .find(|s| s.peer != forwarder.peer && s.has.contains(o))
            .map(|p| (*o, p))
    })?;
    // The object the provider wants in return.
    let provider_want = provider.wants.first().copied()?;
    // Suppliers: have what the provider wants and want what the forwarder wants.
    let suppliers: Vec<&PeerSpec<P, O>> = specs
        .iter()
        .filter(|s| {
            s.peer != forwarder.peer
                && s.peer != provider.peer
                && s.has.contains(&provider_want)
                && s.wants.contains(&wanted)
        })
        .collect();
    if suppliers.is_empty() {
        return None;
    }

    let mut flows = Vec::new();
    // Provider -> forwarder at the provider's full upload capacity.
    let provider_rate = provider.upload_capacity;
    flows.push(Flow {
        from: provider.peer,
        to: forwarder.peer,
        object: wanted,
        rate: provider_rate,
    });
    // Forwarder relays to each supplier, splitting its upload capacity evenly
    // (but never faster than it receives).
    let per_supplier = (forwarder.upload_capacity / suppliers.len() as f64).min(provider_rate);
    for s in &suppliers {
        flows.push(Flow {
            from: forwarder.peer,
            to: s.peer,
            object: wanted,
            rate: per_supplier,
        });
    }
    // Each supplier serves the provider with the object it wants.
    for s in &suppliers {
        flows.push(Flow {
            from: s.peer,
            to: provider.peer,
            object: provider_want,
            rate: s.upload_capacity.min(per_supplier.max(provider_rate)),
        });
    }
    Some(MixedExchangePlan { flows })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact scenario of Table I: A(10,-,x) B(5,x,y) C(10,y,x) D(10,y,x).
    fn table_one() -> Vec<PeerSpec<&'static str, char>> {
        vec![
            PeerSpec {
                peer: "A",
                upload_capacity: 10.0,
                has: vec![],
                wants: vec!['x'],
            },
            PeerSpec {
                peer: "B",
                upload_capacity: 5.0,
                has: vec!['x'],
                wants: vec!['y'],
            },
            PeerSpec {
                peer: "C",
                upload_capacity: 10.0,
                has: vec!['y'],
                wants: vec!['x'],
            },
            PeerSpec {
                peer: "D",
                upload_capacity: 10.0,
                has: vec!['y'],
                wants: vec!['x'],
            },
        ]
    }

    #[test]
    fn pure_exchange_only_serves_b_and_one_supplier() {
        let rates = pure_exchange_rates(&table_one());
        // B exchanges x<->y with C (or D) at B's upload limit of 5.
        assert_eq!(rates["B"], 5.0);
        assert_eq!(rates["A"], 0.0, "A has nothing to trade in a pure exchange");
        let supplied = (rates["C"] > 0.0) as u32 + (rates["D"] > 0.0) as u32;
        assert_eq!(supplied, 1, "only one of C/D can pair with B");
    }

    #[test]
    fn mixed_plan_reproduces_figure_3() {
        let plan = plan_mixed_exchange(&table_one()).expect("Table I structure is present");
        // B sends x to A at 5.
        assert_eq!(plan.download_rate_of(&"A"), 5.0);
        // A forwards x to C and D at 5 each, spending its 10 units of upload.
        assert_eq!(plan.download_rate_of(&"C"), 5.0);
        assert_eq!(plan.download_rate_of(&"D"), 5.0);
        assert_eq!(plan.upload_rate_of(&"A"), 10.0);
        // C and D send y to B at 5 each: B downloads at 10, twice the pure rate.
        assert_eq!(plan.download_rate_of(&"B"), 10.0);
        // Everyone with a want is served.
        assert_eq!(plan.served_peers(), vec!["A", "B", "C", "D"]);
    }

    #[test]
    fn mixed_plan_beats_or_matches_pure_exchange_for_everyone() {
        let specs = table_one();
        let pure = pure_exchange_rates(&specs);
        let plan = plan_mixed_exchange(&specs).unwrap();
        for spec in &specs {
            assert!(
                plan.download_rate_of(&spec.peer) + 1e-9 >= pure[&spec.peer],
                "{} must not be worse off under the mixed plan",
                spec.peer
            );
        }
    }

    #[test]
    fn no_forwarder_means_no_plan() {
        // Everyone has something someone else wants: the pure ring suffices.
        let specs = vec![
            PeerSpec {
                peer: 1u32,
                upload_capacity: 5.0,
                has: vec![1u32],
                wants: vec![2u32],
            },
            PeerSpec {
                peer: 2u32,
                upload_capacity: 5.0,
                has: vec![2u32],
                wants: vec![1u32],
            },
        ];
        assert!(plan_mixed_exchange(&specs).is_none());
    }

    #[test]
    fn no_supplier_means_no_plan() {
        // A forwarder and a provider exist, but nobody has what the provider wants.
        let specs = vec![
            PeerSpec {
                peer: 1u32,
                upload_capacity: 10.0,
                has: vec![],
                wants: vec![7u32],
            },
            PeerSpec {
                peer: 2u32,
                upload_capacity: 5.0,
                has: vec![7u32],
                wants: vec![8u32],
            },
        ];
        assert!(plan_mixed_exchange(&specs).is_none());
    }

    #[test]
    fn flows_respect_upload_capacities() {
        let plan = plan_mixed_exchange(&table_one()).unwrap();
        let specs = table_one();
        for spec in &specs {
            assert!(
                plan.upload_rate_of(&spec.peer) <= spec.upload_capacity + 1e-9,
                "{} exceeds its upload capacity",
                spec.peer
            );
        }
    }
}
