//! Ring-initiation token circulation.

use crate::{ExchangeRing, Key, RingEdge};

/// The outcome of circulating a ring-initiation token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenOutcome<P> {
    /// Every member confirmed; the ring can be activated.
    Confirmed,
    /// A member declined (offline, object gone, no capacity, already busy in
    /// another ring, ...); the ring must not be activated.
    Declined {
        /// The first member that declined.
        peer: P,
        /// How many members had already confirmed before the decline.
        confirmed_before: usize,
    },
}

impl<P> TokenOutcome<P> {
    /// Whether the ring was fully confirmed.
    #[must_use]
    pub fn is_confirmed(&self) -> bool {
        matches!(self, TokenOutcome::Confirmed)
    }
}

/// The token a ring initiator circulates before activating an exchange.
///
/// The paper notes that a discovered ring may be stale by the time it is
/// initiated: peers may have gone offline, deleted the object, or committed
/// their slots to a competing ring discovered at the same time.  The
/// initiator therefore circulates a token around the proposed ring and only
/// activates the exchange if **every** member confirms.
///
/// The confirmation decision itself lives with the caller (the simulator or a
/// real implementation); this type captures the ordering and the outcome.
///
/// # Example
///
/// ```
/// use exchange::{ExchangeRing, RingEdge, RingToken};
///
/// let ring = ExchangeRing::new(vec![
///     RingEdge { uploader: 1u32, downloader: 2u32, object: 10u32 },
///     RingEdge { uploader: 2, downloader: 1, object: 20 },
/// ]).unwrap();
///
/// let token = RingToken::new(1);
/// let outcome = token.circulate(&ring, |peer, _edge| *peer != 99);
/// assert!(outcome.is_confirmed());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingToken<P> {
    initiator: P,
}

impl<P: Key> RingToken<P> {
    /// Creates a token held by `initiator`.
    #[must_use]
    pub fn new(initiator: P) -> Self {
        RingToken { initiator }
    }

    /// The initiating peer.
    #[must_use]
    pub fn initiator(&self) -> P {
        self.initiator
    }

    /// Circulates the token around `ring`, starting from the member after the
    /// initiator, asking each member to `confirm` the upload edge assigned to
    /// it.  Stops at the first decline.
    ///
    /// `confirm(peer, edge)` is called exactly once per member (including the
    /// initiator, last, so that it re-validates its own upload after everyone
    /// else agreed).
    pub fn circulate<O: Key, F>(&self, ring: &ExchangeRing<P, O>, mut confirm: F) -> TokenOutcome<P>
    where
        F: FnMut(&P, &RingEdge<P, O>) -> bool,
    {
        // Order: members after the initiator in cycle order, initiator last.
        let members = ring.members();
        let start = members
            .iter()
            .position(|p| *p == self.initiator)
            .map_or(0, |i| i + 1);
        let ordered = members[start..].iter().chain(members[..start].iter());

        for (confirmed, peer) in ordered.enumerate() {
            let edge = ring
                .upload_of(peer)
                .expect("every ring member has an upload edge");
            if !confirm(peer, &edge) {
                return TokenOutcome::Declined {
                    peer: *peer,
                    confirmed_before: confirmed,
                };
            }
        }
        TokenOutcome::Confirmed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_way() -> ExchangeRing<u32, u32> {
        ExchangeRing::new(vec![
            RingEdge {
                uploader: 0,
                downloader: 1,
                object: 10,
            },
            RingEdge {
                uploader: 1,
                downloader: 2,
                object: 20,
            },
            RingEdge {
                uploader: 2,
                downloader: 0,
                object: 30,
            },
        ])
        .unwrap()
    }

    #[test]
    fn all_confirm() {
        let token = RingToken::new(0u32);
        let mut asked = Vec::new();
        let outcome = token.circulate(&three_way(), |peer, edge| {
            asked.push((*peer, edge.object));
            true
        });
        assert!(outcome.is_confirmed());
        // Everyone is asked exactly once; the initiator is asked last.
        assert_eq!(asked.len(), 3);
        assert_eq!(asked.last().unwrap().0, 0);
        let mut peers: Vec<u32> = asked.iter().map(|(p, _)| *p).collect();
        peers.sort_unstable();
        assert_eq!(peers, vec![0, 1, 2]);
    }

    #[test]
    fn decline_stops_circulation() {
        let token = RingToken::new(0u32);
        let mut asked = 0;
        let outcome = token.circulate(&three_way(), |peer, _| {
            asked += 1;
            *peer != 2
        });
        match outcome {
            TokenOutcome::Declined {
                peer,
                confirmed_before,
            } => {
                assert_eq!(peer, 2);
                assert_eq!(
                    confirmed_before, 1,
                    "peer 1 confirmed before peer 2 declined"
                );
            }
            TokenOutcome::Confirmed => panic!("expected a decline"),
        }
        assert_eq!(asked, 2, "circulation stops at the first decline");
    }

    #[test]
    fn members_are_asked_to_confirm_their_own_upload() {
        let token = RingToken::new(0u32);
        token.circulate(&three_way(), |peer, edge| {
            assert_eq!(edge.uploader, *peer);
            true
        });
    }

    #[test]
    fn initiator_not_in_ring_still_circulates_everyone() {
        // Defensive: if the initiator is not a member (should not happen in
        // practice), everyone is still asked once.
        let token = RingToken::new(42u32);
        let mut asked = 0;
        let outcome = token.circulate(&three_way(), |_, _| {
            asked += 1;
            true
        });
        assert!(outcome.is_confirmed());
        assert_eq!(asked, 3);
    }

    #[test]
    fn outcome_helpers() {
        assert!(TokenOutcome::<u32>::Confirmed.is_confirmed());
        assert!(!TokenOutcome::Declined {
            peer: 1u32,
            confirmed_before: 0
        }
        .is_confirmed());
    }
}
