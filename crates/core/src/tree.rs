//! Depth-limited request trees.

use std::collections::VecDeque;

use crate::{Key, RequestGraph};

/// One node of a [`RequestTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeNode<P, O> {
    /// The peer at this node.
    pub peer: P,
    /// The object this peer requested from its parent in the tree.
    pub object: O,
    /// Depth below the root (1 = a direct entry of the root's IRQ).
    pub depth: usize,
    /// Index of the parent node in the tree's node list, or `None` if the
    /// parent is the root itself.
    pub parent: Option<usize>,
}

/// The request tree a provider assembles from its incoming-request queue.
///
/// The root (implicit) is the provider; its children are the peers with
/// requests in the provider's IRQ, each annotated with the object requested;
/// their children are the peers in *their* IRQs, and so on, down to a bounded
/// depth (the paper prunes to depth 5, enough for rings of up to 6 peers).
///
/// A peer appears at most once, at its shallowest depth — deeper duplicates
/// cannot produce a shorter ring and are pruned, which also keeps the tree
/// small.
///
/// # Example
///
/// ```
/// use exchange::{RequestGraph, RequestTree};
///
/// let mut g: RequestGraph<u32, u32> = RequestGraph::new();
/// g.add_request(1, 0, 10); // peer 1 asked the root (0) for object 10
/// g.add_request(2, 1, 20); // peer 2 asked peer 1 for object 20
///
/// let tree = RequestTree::build(&g, 0, 4);
/// assert_eq!(tree.len(), 2);
/// assert_eq!(tree.depth_of(&2), Some(2));
/// let path = tree.path_to(&2).unwrap();
/// assert_eq!(path.len(), 2);
/// assert_eq!(path[0].peer, 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestTree<P: Key, O: Key> {
    root: P,
    nodes: Vec<TreeNode<P, O>>,
    max_depth: usize,
}

impl<P: Key, O: Key> RequestTree<P, O> {
    /// Builds the tree rooted at `root` from the global request graph,
    /// limited to `max_depth` levels below the root.
    ///
    /// # Panics
    ///
    /// Panics if `max_depth` is zero — a tree with no levels cannot describe
    /// any exchange.
    #[must_use]
    pub fn build(graph: &RequestGraph<P, O>, root: P, max_depth: usize) -> Self {
        assert!(max_depth > 0, "a request tree needs at least one level");
        let mut nodes: Vec<TreeNode<P, O>> = Vec::new();
        let mut queue: VecDeque<usize> = VecDeque::new();

        let push_children = |nodes: &mut Vec<TreeNode<P, O>>,
                             queue: &mut VecDeque<usize>,
                             parent_peer: P,
                             parent_idx: Option<usize>,
                             depth: usize,
                             root: P| {
            for req in graph.incoming(parent_peer) {
                let peer = req.requester;
                if peer == root || nodes.iter().any(|n| n.peer == peer) {
                    continue;
                }
                nodes.push(TreeNode {
                    peer,
                    object: req.object,
                    depth,
                    parent: parent_idx,
                });
                queue.push_back(nodes.len() - 1);
            }
        };

        push_children(&mut nodes, &mut queue, root, None, 1, root);
        while let Some(idx) = queue.pop_front() {
            let node = nodes[idx];
            if node.depth >= max_depth {
                continue;
            }
            push_children(
                &mut nodes,
                &mut queue,
                node.peer,
                Some(idx),
                node.depth + 1,
                root,
            );
        }

        RequestTree {
            root,
            nodes,
            max_depth,
        }
    }

    /// The provider at the (implicit) root of the tree.
    #[must_use]
    pub fn root(&self) -> P {
        self.root
    }

    /// The depth limit this tree was built with.
    #[must_use]
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Number of peers in the tree (excluding the root).
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree has no nodes (the root's IRQ is empty).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All nodes in breadth-first order.
    #[must_use]
    pub fn nodes(&self) -> &[TreeNode<P, O>] {
        &self.nodes
    }

    /// Whether `peer` appears in the tree.
    #[must_use]
    pub fn contains(&self, peer: &P) -> bool {
        self.nodes.iter().any(|n| n.peer == *peer)
    }

    /// The depth of `peer` in the tree, if present (1 = direct IRQ entry).
    #[must_use]
    pub fn depth_of(&self, peer: &P) -> Option<usize> {
        self.nodes.iter().find(|n| n.peer == *peer).map(|n| n.depth)
    }

    /// The path from the root's first-level child down to `peer`, if present.
    ///
    /// The returned nodes are ordered root-side first; the last element is the
    /// node for `peer` itself.  Each node's `object` is what that peer
    /// requested from the previous peer on the path (or from the root for the
    /// first element) — exactly the transfers that a ring through `peer` would
    /// satisfy.
    #[must_use]
    pub fn path_to(&self, peer: &P) -> Option<Vec<TreeNode<P, O>>> {
        let mut idx = self.nodes.iter().position(|n| n.peer == *peer)?;
        let mut path = vec![self.nodes[idx]];
        while let Some(parent) = self.nodes[idx].parent {
            path.push(self.nodes[parent]);
            idx = parent;
        }
        path.reverse();
        Some(path)
    }

    /// An estimate of the wire size (in bytes) of shipping this tree verbatim,
    /// assuming `id_bytes` per peer or object identifier.  Used to compare
    /// against the Bloom-summary representation.
    #[must_use]
    pub fn wire_size_bytes(&self, id_bytes: usize) -> usize {
        // Each node ships a peer id, an object id and a parent reference.
        self.nodes.len() * (2 * id_bytes + 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_graph() -> RequestGraph<u32, u32> {
        // 1 -> 0, 2 -> 1, 3 -> 2, 4 -> 3 (a chain of requests towards 0)
        [(1, 0, 10), (2, 1, 20), (3, 2, 30), (4, 3, 40)]
            .into_iter()
            .collect()
    }

    #[test]
    fn empty_irq_gives_empty_tree() {
        let g: RequestGraph<u32, u32> = RequestGraph::new();
        let tree = RequestTree::build(&g, 0, 4);
        assert!(tree.is_empty());
        assert_eq!(tree.len(), 0);
        assert_eq!(tree.root(), 0);
        assert!(!tree.contains(&1));
        assert!(tree.path_to(&1).is_none());
    }

    #[test]
    fn chain_is_flattened_with_correct_depths() {
        let tree = RequestTree::build(&chain_graph(), 0, 4);
        assert_eq!(tree.len(), 4);
        assert_eq!(tree.depth_of(&1), Some(1));
        assert_eq!(tree.depth_of(&2), Some(2));
        assert_eq!(tree.depth_of(&3), Some(3));
        assert_eq!(tree.depth_of(&4), Some(4));
    }

    #[test]
    fn max_depth_prunes_the_tree() {
        let tree = RequestTree::build(&chain_graph(), 0, 2);
        assert_eq!(tree.len(), 2);
        assert!(tree.contains(&2));
        assert!(!tree.contains(&3));
        assert_eq!(tree.max_depth(), 2);
    }

    #[test]
    fn path_to_returns_ring_order() {
        let tree = RequestTree::build(&chain_graph(), 0, 5);
        let path = tree.path_to(&3).unwrap();
        let peers: Vec<u32> = path.iter().map(|n| n.peer).collect();
        let objects: Vec<u32> = path.iter().map(|n| n.object).collect();
        assert_eq!(peers, vec![1, 2, 3]);
        assert_eq!(objects, vec![10, 20, 30]);
    }

    #[test]
    fn peer_appears_once_at_shallowest_depth() {
        // Peer 2 requests from both 0 (depth 1) and 1 (would be depth 2).
        let g: RequestGraph<u32, u32> = [(1, 0, 10), (2, 0, 11), (2, 1, 20)].into_iter().collect();
        let tree = RequestTree::build(&g, 0, 4);
        assert_eq!(tree.depth_of(&2), Some(1));
        assert_eq!(tree.nodes().iter().filter(|n| n.peer == 2).count(), 1);
    }

    #[test]
    fn root_is_never_a_tree_node() {
        // 0 and 1 request from each other.
        let g: RequestGraph<u32, u32> = [(1, 0, 10), (0, 1, 20)].into_iter().collect();
        let tree = RequestTree::build(&g, 0, 4);
        assert!(!tree.contains(&0));
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn branching_irq_creates_siblings() {
        let g: RequestGraph<u32, u32> = [(1, 0, 10), (2, 0, 11), (3, 1, 30), (4, 2, 40)]
            .into_iter()
            .collect();
        let tree = RequestTree::build(&g, 0, 3);
        assert_eq!(tree.len(), 4);
        assert_eq!(tree.depth_of(&3), Some(2));
        assert_eq!(tree.depth_of(&4), Some(2));
        let path4 = tree.path_to(&4).unwrap();
        assert_eq!(path4.iter().map(|n| n.peer).collect::<Vec<_>>(), vec![2, 4]);
    }

    #[test]
    fn wire_size_scales_with_nodes() {
        let tree = RequestTree::build(&chain_graph(), 0, 5);
        assert_eq!(tree.wire_size_bytes(8), 4 * 20);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn zero_depth_panics() {
        let _ = RequestTree::build(&chain_graph(), 0, 0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_graph() -> impl Strategy<Value = RequestGraph<u8, u8>> {
            proptest::collection::vec((0u8..12, 0u8..12, 0u8..30), 0..80).prop_map(|edges| {
                edges
                    .into_iter()
                    .filter(|(r, p, _)| r != p)
                    .collect::<RequestGraph<u8, u8>>()
            })
        }

        proptest! {
            #[test]
            fn depths_never_exceed_limit(graph in arb_graph(), root in 0u8..12, depth in 1usize..6) {
                let tree = RequestTree::build(&graph, root, depth);
                for node in tree.nodes() {
                    prop_assert!(node.depth >= 1 && node.depth <= depth);
                    prop_assert!(node.peer != root);
                }
            }

            #[test]
            fn every_tree_edge_is_a_graph_request(graph in arb_graph(), root in 0u8..12) {
                let tree = RequestTree::build(&graph, root, 5);
                for node in tree.nodes() {
                    let parent_peer = match node.parent {
                        Some(idx) => tree.nodes()[idx].peer,
                        None => root,
                    };
                    prop_assert!(graph.has_request(node.peer, parent_peer, node.object));
                }
            }

            #[test]
            fn path_depths_are_consecutive(graph in arb_graph(), root in 0u8..12) {
                let tree = RequestTree::build(&graph, root, 5);
                for node in tree.nodes() {
                    let path = tree.path_to(&node.peer).unwrap();
                    for (i, hop) in path.iter().enumerate() {
                        prop_assert_eq!(hop.depth, i + 1);
                    }
                }
            }
        }
    }
}
