//! Ring search: discovering feasible n-way exchanges through a provider.

use std::cmp::Reverse;
use std::collections::{HashMap, HashSet};

use crate::{ExchangeRing, Key, RequestGraph, RingEdge, RingPreference, SearchPolicy};

/// The result of a [traced](RingSearch::find_traced) ring search: the rings
/// plus the exact set of peers whose state the search read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchTrace<P: Key, O: Key> {
    /// The feasible rings, in the policy's preference order.
    pub rings: Vec<ExchangeRing<P, O>>,
    /// Every peer the search depended on, sorted and deduplicated: the root
    /// plus every peer that entered the BFS frontier.  The search only reads
    /// the incoming-request queues of these peers and only probes the
    /// `provides` oracle for them, so a graph or ownership change confined to
    /// peers *outside* this set cannot alter the result — `deps` is the
    /// invalidation footprint a candidate cache must watch.
    pub deps: Vec<P>,
    /// The subset of [`deps`](Self::deps) whose *incoming-request queues* the
    /// search actually read: the root (its queue seeds the BFS) plus every
    /// frontier peer that was expanded below the depth bound.  An edge
    /// added or removed at a provider outside this set cannot change which
    /// paths the search enumerates — together with the per-object `provides`
    /// probes recorded in `deps`, this is the footprint entry-level cache
    /// invalidation watches.  Sorted and deduplicated.
    pub edge_deps: Vec<P>,
}

/// Reusable scratch state shared across ring searches.
///
/// Holds the BFS working buffers (path arena, materialisation buffer, ring
/// dedup set) and an *expansion-prefix snapshot*: for every peer expanded
/// below the first level, the first `fanout` entries of its incoming queue —
/// exactly the slice the depth-bounded search reads.  Consecutive searches —
/// typically one per provider within a scheduling round — neither reallocate
/// their working memory nor re-walk the queue prefix of a peer an earlier
/// provider's search already expanded: overlapping request trees share their
/// expansion prefixes through the snapshot.  (The root's own queue is always
/// scanned in full, directly from the graph — it is read once per search, so
/// there is nothing to share.)
///
/// The snapshot is keyed on [`RequestGraph::generation`] and discarded
/// wholesale as soon as the graph mutates, so a scratch-backed search is
/// always bit-identical to a fresh [`RingSearch::find_traced`].  A caller
/// that forwards the graph's [dirty-edge
/// log](crate::RequestGraph::take_dirty_edges) can do better and
/// [`advance`](Self::advance) the snapshot across mutations, forgetting only
/// the queues that changed.
///
/// # Shard safety
///
/// A scratch holds no shared state — it is plain owned data, `Send` whenever
/// the key types are — and every search re-validates its snapshot against
/// the graph generation before reuse.  Engines that shard searches across
/// worker threads therefore give each shard its *own* scratch against a
/// shared `&RequestGraph`: results stay bit-identical to fresh searches, and
/// a scratch warmed on one thread can safely migrate to another between
/// batches (the simulator's sharded scheduler does exactly this).
#[derive(Debug)]
pub struct SearchScratch<P: Key, O: Key> {
    /// Graph generation the snapshot was taken at.
    generation: Option<u64>,
    /// The fanout the interior prefixes were materialised at; a search with
    /// a larger fanout resets the snapshot.
    fanout: usize,
    /// Full incoming queues of peers that served as search *roots* (their
    /// queue is always scanned whole).
    roots: HashMap<P, Vec<(P, O)>>,
    /// Capped queue prefixes of peers expanded below the first level.
    adjacency: HashMap<P, Vec<(P, O)>>,
    /// (peer, object requested of its parent, parent index, depth).
    arena: Vec<(P, O, usize, usize)>,
    path: Vec<(P, O)>,
    seen: HashSet<Vec<RingEdge<P, O>>>,
    edge_deps: Vec<P>,
}

impl<P: Key, O: Key> SearchScratch<P, O> {
    /// Creates an empty scratch.
    #[must_use]
    pub fn new() -> Self {
        SearchScratch {
            generation: None,
            fanout: 0,
            roots: HashMap::new(),
            adjacency: HashMap::new(),
            arena: Vec::new(),
            path: Vec::new(),
            seen: HashSet::new(),
            edge_deps: Vec::new(),
        }
    }

    /// Number of peers the current snapshot holds queues for (diagnostic;
    /// the snapshot resets when the graph mutates, unless the caller
    /// [`advance`](Self::advance)s it).
    #[must_use]
    pub fn snapshot_len(&self) -> usize {
        self.adjacency.len() + self.roots.len()
    }

    /// Advances the snapshot from `from_generation` to `to_generation`,
    /// forgetting only the snapshots of `changed_providers` — the peers whose
    /// incoming queues changed in between.  Each provider comes with a flag
    /// saying whether the change reached the fanout-bounded *prefix* of its
    /// queue: the full root snapshot is forgotten either way, but the capped
    /// interior prefix survives a change beyond it.
    ///
    /// This is the incremental alternative to the wholesale reset a search
    /// performs on a generation mismatch: a caller that drains the graph's
    /// [dirty-edge log](crate::RequestGraph::take_dirty_edges) knows exactly
    /// which queues changed and can keep every other peer's snapshot warm
    /// across mutations.  Soundness is guarded by the generation pair: if the
    /// scratch is not exactly at `from_generation` (some mutations were never
    /// reported to it), the whole snapshot is dropped instead.
    ///
    /// **Contract:** the `prefix_changed` flags must be computed at (or
    /// below) the fanout the scratch's prefixes were materialised with.  A
    /// scratch only ever serves searches of one fanout per generation epoch
    /// (a larger fanout resets it), so computing the flags at the fanout the
    /// searches run with — as the simulation's drain does — is always sound;
    /// mixing fanouts across one scratch while advancing it is not.
    pub fn advance(
        &mut self,
        from_generation: u64,
        to_generation: u64,
        changed_providers: impl IntoIterator<Item = (P, bool)>,
    ) {
        if self.generation == Some(from_generation) {
            for (provider, prefix_changed) in changed_providers {
                self.roots.remove(&provider);
                if prefix_changed {
                    self.adjacency.remove(&provider);
                }
            }
        } else {
            self.adjacency.clear();
            self.roots.clear();
        }
        self.generation = Some(to_generation);
    }

    /// Materialises (or reuses) the full incoming queue of a search root.
    fn full<'a>(
        roots: &'a mut HashMap<P, Vec<(P, O)>>,
        graph: &RequestGraph<P, O>,
        peer: P,
    ) -> &'a [(P, O)] {
        roots.entry(peer).or_insert_with(|| {
            graph
                .incoming(peer)
                .map(|r| (r.requester, r.object))
                .collect()
        })
    }

    /// Materialises (or reuses) the first `fanout` incoming-queue entries of
    /// `peer`.
    fn prefix<'a>(
        adjacency: &'a mut HashMap<P, Vec<(P, O)>>,
        graph: &RequestGraph<P, O>,
        peer: P,
        fanout: usize,
    ) -> &'a [(P, O)] {
        adjacency.entry(peer).or_insert_with(|| {
            graph
                .incoming(peer)
                .take(fanout)
                .map(|r| (r.requester, r.object))
                .collect()
        })
    }
}

impl<P: Key, O: Key> Default for SearchScratch<P, O> {
    fn default() -> Self {
        SearchScratch::new()
    }
}

/// A configurable ring search.
///
/// The search walks the provider's request tree (simple paths through the
/// request graph following *incoming* request edges) up to the policy's depth
/// bound, and reports every ring in which the last peer on the path can
/// provide an object the provider currently wants.  Results are ordered by
/// the policy's ring-size preference, then by discovery order, so the caller
/// can simply try candidates front to back.
///
/// A global expansion budget bounds the work on pathological request graphs
/// (very popular providers with huge incoming-request queues).
///
/// # Example
///
/// ```
/// use exchange::{RequestGraph, RingSearch, SearchPolicy, RingPreference};
///
/// let graph: RequestGraph<u32, u32> = [(1, 0, 10), (0, 1, 11)].into_iter().collect();
/// let search = RingSearch::new(SearchPolicy::new(5, RingPreference::ShorterFirst));
/// // Peer 0 wants object 11 and knows peer 1 has it (it already asked peer 1).
/// let rings = search.find(&graph, 0, &[11], |p, o| *p == 1 && *o == 11);
/// assert_eq!(rings.len(), 1);
/// assert!(rings[0].is_pairwise());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingSearch {
    policy: SearchPolicy,
    expansion_budget: usize,
    fanout: usize,
}

impl RingSearch {
    /// Creates a search with the default expansion budget and unbounded
    /// per-node fanout.
    #[must_use]
    pub fn new(policy: SearchPolicy) -> Self {
        RingSearch {
            policy,
            expansion_budget: 50_000,
            fanout: usize::MAX,
        }
    }

    /// Overrides the maximum number of path expansions performed per search.
    #[must_use]
    pub fn with_expansion_budget(mut self, budget: usize) -> Self {
        self.expansion_budget = budget.max(1);
        self
    }

    /// Bounds how many incoming-request entries are explored per node
    /// *below the first level*.
    ///
    /// The provider always scans its own incoming-request queue in full (the
    /// paper's pairwise detection examines every pending request), but the
    /// piggy-backed request trees of deeper levels are pruned: real peers
    /// would not ship arbitrarily wide trees, and bounding the fanout keeps
    /// the search cost predictable at the price of possibly missing some
    /// long rings.
    #[must_use]
    pub fn with_fanout(mut self, fanout: usize) -> Self {
        self.fanout = fanout.max(1);
        self
    }

    /// The policy this search uses.
    #[must_use]
    pub fn policy(&self) -> SearchPolicy {
        self.policy
    }

    /// Finds feasible rings through `root`.
    ///
    /// * `wants` — the objects `root` currently wants to download.
    /// * `provides` — oracle telling whether a given peer can serve a given
    ///   object (in the simulator: the peer stores the object, shares, and
    ///   `root` learned about it during lookup).
    ///
    /// The returned rings all contain `root`; each ring's edge list starts
    /// with the edge on which `root` uploads.
    pub fn find<P: Key, O: Key, F>(
        &self,
        graph: &RequestGraph<P, O>,
        root: P,
        wants: &[O],
        provides: F,
    ) -> Vec<ExchangeRing<P, O>>
    where
        F: Fn(&P, &O) -> bool,
    {
        self.search(
            &mut SearchScratch::new(),
            graph,
            root,
            wants,
            provides,
            false,
        )
        .rings
    }

    /// Like [`find`](Self::find), but also reports the set of peers the
    /// search depended on (see [`SearchTrace::deps`]), so callers can cache
    /// the result and invalidate it precisely.
    pub fn find_traced<P: Key, O: Key, F>(
        &self,
        graph: &RequestGraph<P, O>,
        root: P,
        wants: &[O],
        provides: F,
    ) -> SearchTrace<P, O>
    where
        F: Fn(&P, &O) -> bool,
    {
        self.search(
            &mut SearchScratch::new(),
            graph,
            root,
            wants,
            provides,
            true,
        )
    }

    /// Like [`find_traced`](Self::find_traced), but runs inside a caller-owned
    /// [`SearchScratch`], sharing buffers and the per-generation adjacency
    /// snapshot with the other searches of the same round.  The result is
    /// identical to a fresh search.
    pub fn find_traced_in<P: Key, O: Key, F>(
        &self,
        scratch: &mut SearchScratch<P, O>,
        graph: &RequestGraph<P, O>,
        root: P,
        wants: &[O],
        provides: F,
    ) -> SearchTrace<P, O>
    where
        F: Fn(&P, &O) -> bool,
    {
        self.search(scratch, graph, root, wants, provides, true)
    }

    /// Shared search body.  The dependency sets are only assembled when
    /// `trace_deps` is set — plain [`find`](Self::find) callers skip that
    /// cost entirely (`deps`/`edge_deps` come back empty).
    fn search<P: Key, O: Key, F>(
        &self,
        scratch: &mut SearchScratch<P, O>,
        graph: &RequestGraph<P, O>,
        root: P,
        wants: &[O],
        provides: F,
        trace_deps: bool,
    ) -> SearchTrace<P, O>
    where
        F: Fn(&P, &O) -> bool,
    {
        let mut found: Vec<(usize, ExchangeRing<P, O>)> = Vec::new();
        if wants.is_empty() {
            let deps = if trace_deps { vec![root] } else { Vec::new() };
            return SearchTrace {
                rings: Vec::new(),
                edge_deps: deps.clone(),
                deps,
            };
        }
        let SearchScratch {
            generation,
            fanout,
            roots,
            adjacency,
            arena,
            path,
            seen,
            edge_deps,
        } = scratch;
        // The queue snapshot survives across searches while the graph is
        // unchanged (or explicitly advanced) and the fanout fits; everything
        // else is per-search state.
        if *generation != Some(graph.generation()) || *fanout < self.fanout {
            adjacency.clear();
            roots.clear();
            *generation = Some(graph.generation());
            *fanout = self.fanout;
        }
        arena.clear();
        seen.clear();
        edge_deps.clear();
        let mut budget = self.expansion_budget;
        // Breadth-first enumeration of simple paths root <- r1 <- r2 ...
        // following incoming request edges.  Breadth-first order guarantees
        // that when the expansion budget runs out, the shallow (short-ring)
        // candidates have already been covered.
        //
        // Each frontier node stores its parent's arena index instead of an
        // owned path, and the arena doubles as the FIFO queue (nodes are
        // expanded in insertion order), so extending a path allocates nothing
        // and the full path is only materialised — by walking parent
        // pointers into a reused buffer — for the one node being expanded.
        const NO_PARENT: usize = usize::MAX;
        // The root's queue is scanned in full (the paper's pairwise detection
        // examines every pending request); providers are searched over and
        // over, so their full queues are snapshotted separately from the
        // capped interior prefixes.
        arena.extend(
            SearchScratch::full(roots, graph, root)
                .iter()
                .map(|&(requester, object)| (requester, object, NO_PARENT, 1usize)),
        );
        if trace_deps {
            edge_deps.push(root);
        }
        let mut head = 0;

        while head < arena.len() {
            if budget == 0 {
                break;
            }
            budget -= 1;
            let (last_peer, _, _, depth) = arena[head];

            // Materialise the path root <- ... <- last_peer for this node.
            path.clear();
            let mut cursor = head;
            loop {
                let (peer, object, parent, _) = arena[cursor];
                path.push((peer, object));
                if parent == NO_PARENT {
                    break;
                }
                cursor = parent;
            }
            path.reverse();

            // Can the last peer on the path close a ring by serving something
            // the root wants?
            for object in wants {
                if provides(&last_peer, object) {
                    let ring = Self::ring_from_path(root, path, *object);
                    if let Ok(ring) = ring {
                        // Rings through `root` store their edges in cycle
                        // order starting with root's upload, so the edge list
                        // is already a canonical fingerprint.
                        if seen.insert(ring.edges().to_vec()) {
                            found.push((path.len() + 1, ring));
                        }
                    }
                }
            }

            // Extend the path.
            if depth < self.policy.max_depth() {
                if trace_deps {
                    edge_deps.push(last_peer);
                }
                let children = SearchScratch::prefix(adjacency, graph, last_peer, *fanout);
                for &(peer, object) in children.iter().take(self.fanout) {
                    if peer == root || path.iter().any(|(p, _)| *p == peer) {
                        continue;
                    }
                    arena.push((peer, object, head, depth + 1));
                }
            }
            head += 1;
        }

        match self.policy.preference() {
            RingPreference::ShorterFirst => found.sort_by_key(|(size, _)| *size),
            RingPreference::LongerFirst => found.sort_by_key(|(size, _)| Reverse(*size)),
        }
        // The full dependency set: the root (its incoming queue seeds the
        // search) plus every peer that entered the frontier, whether or not
        // it was expanded before the budget ran out.  The edge-dependency
        // subset holds only the peers whose queues were actually read.
        let (deps, edge_deps) = if trace_deps {
            let mut deps: Vec<P> = Vec::with_capacity(arena.len() + 1);
            deps.push(root);
            deps.extend(arena.iter().map(|(peer, _, _, _)| *peer));
            deps.sort_unstable();
            deps.dedup();
            edge_deps.sort_unstable();
            edge_deps.dedup();
            (deps, edge_deps.clone())
        } else {
            (Vec::new(), Vec::new())
        };
        SearchTrace {
            rings: found.into_iter().map(|(_, ring)| ring).collect(),
            deps,
            edge_deps,
        }
    }

    /// Builds the ring implied by a request-tree path plus the closing edge on
    /// which the deepest peer serves `closing_object` to the root.
    fn ring_from_path<P: Key, O: Key>(
        root: P,
        path: &[(P, O)],
        closing_object: O,
    ) -> Result<ExchangeRing<P, O>, crate::RingError> {
        let mut edges = Vec::with_capacity(path.len() + 1);
        // Root serves its direct requester.
        edges.push(RingEdge {
            uploader: root,
            downloader: path[0].0,
            object: path[0].1,
        });
        // Each peer on the path serves the next one.
        for window in path.windows(2) {
            edges.push(RingEdge {
                uploader: window[0].0,
                downloader: window[1].0,
                object: window[1].1,
            });
        }
        // The deepest peer closes the ring by serving the root.
        edges.push(RingEdge {
            uploader: path.last().expect("non-empty path").0,
            downloader: root,
            object: closing_object,
        });
        ExchangeRing::new(edges)
    }
}

/// Convenience wrapper around [`RingSearch::find`] with the default budget.
pub fn find_rings<P: Key, O: Key, F>(
    graph: &RequestGraph<P, O>,
    root: P,
    wants: &[O],
    provides: F,
    policy: SearchPolicy,
) -> Vec<ExchangeRing<P, O>>
where
    F: Fn(&P, &O) -> bool,
{
    RingSearch::new(policy).find(graph, root, wants, provides)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Ownership oracle backed by a map peer -> owned objects.
    fn owns(map: &HashMap<u32, Vec<u32>>) -> impl Fn(&u32, &u32) -> bool + '_ {
        |peer, object| map.get(peer).is_some_and(|objs| objs.contains(object))
    }

    fn shorter_first(max: usize) -> SearchPolicy {
        SearchPolicy::new(max, RingPreference::ShorterFirst)
    }

    fn longer_first(max: usize) -> SearchPolicy {
        SearchPolicy::new(max, RingPreference::LongerFirst)
    }

    #[test]
    fn no_wants_means_no_rings() {
        let graph: RequestGraph<u32, u32> = [(1, 0, 10)].into_iter().collect();
        let rings = find_rings(&graph, 0, &[], |_, _| true, shorter_first(5));
        assert!(rings.is_empty());
    }

    #[test]
    fn pairwise_exchange_is_found() {
        // Peer 1 asked 0 for object 10; peer 0 wants object 99 which peer 1 owns.
        let graph: RequestGraph<u32, u32> = [(1, 0, 10)].into_iter().collect();
        let ownership: HashMap<u32, Vec<u32>> = [(1, vec![99])].into_iter().collect();
        let rings = find_rings(&graph, 0, &[99], owns(&ownership), shorter_first(5));
        assert_eq!(rings.len(), 1);
        let ring = &rings[0];
        assert!(ring.is_pairwise());
        assert_eq!(ring.upload_of(&0).unwrap().object, 10);
        assert_eq!(ring.upload_of(&1).unwrap().object, 99);
    }

    #[test]
    fn three_way_ring_is_found_via_request_tree() {
        // 1 asked 0 for o10; 2 asked 1 for o20; 0 wants o30 owned by 2.
        let graph: RequestGraph<u32, u32> = [(1, 0, 10), (2, 1, 20)].into_iter().collect();
        let ownership: HashMap<u32, Vec<u32>> = [(2, vec![30])].into_iter().collect();
        let rings = find_rings(&graph, 0, &[30], owns(&ownership), shorter_first(5));
        assert_eq!(rings.len(), 1);
        let ring = &rings[0];
        assert_eq!(ring.len(), 3);
        // 0 serves 1 with o10, 1 serves 2 with o20, 2 serves 0 with o30.
        assert_eq!(ring.upload_of(&0).unwrap().downloader, 1);
        assert_eq!(ring.upload_of(&1).unwrap().object, 20);
        assert_eq!(ring.upload_of(&2).unwrap().downloader, 0);
    }

    #[test]
    fn max_ring_bound_excludes_long_cycles() {
        // Chain 1->0, 2->1, 3->2, 4->3; only peer 4 owns what 0 wants.
        let graph: RequestGraph<u32, u32> = [(1, 0, 10), (2, 1, 20), (3, 2, 30), (4, 3, 40)]
            .into_iter()
            .collect();
        let ownership: HashMap<u32, Vec<u32>> = [(4, vec![99])].into_iter().collect();
        // A ring through peer 4 needs 5 peers; bounding at 4 finds nothing.
        assert!(find_rings(&graph, 0, &[99], owns(&ownership), shorter_first(4)).is_empty());
        // Raising the bound to 5 finds it.
        let rings = find_rings(&graph, 0, &[99], owns(&ownership), shorter_first(5));
        assert_eq!(rings.len(), 1);
        assert_eq!(rings[0].len(), 5);
    }

    #[test]
    fn preference_orders_candidates() {
        // Two feasible rings: pairwise via peer 1, 3-way via peer 2.
        let graph: RequestGraph<u32, u32> = [(1, 0, 10), (2, 1, 20)].into_iter().collect();
        let ownership: HashMap<u32, Vec<u32>> =
            [(1, vec![99]), (2, vec![99])].into_iter().collect();

        let shorter = find_rings(&graph, 0, &[99], owns(&ownership), shorter_first(5));
        assert_eq!(shorter.len(), 2);
        assert_eq!(shorter[0].len(), 2);
        assert_eq!(shorter[1].len(), 3);

        let longer = find_rings(&graph, 0, &[99], owns(&ownership), longer_first(5));
        assert_eq!(longer[0].len(), 3);
        assert_eq!(longer[1].len(), 2);
    }

    #[test]
    fn multiple_wanted_objects_yield_multiple_rings() {
        let graph: RequestGraph<u32, u32> = [(1, 0, 10)].into_iter().collect();
        let ownership: HashMap<u32, Vec<u32>> = [(1, vec![98, 99])].into_iter().collect();
        let rings = find_rings(&graph, 0, &[98, 99], owns(&ownership), shorter_first(5));
        assert_eq!(rings.len(), 2);
        assert!(rings.iter().all(ExchangeRing::is_pairwise));
    }

    #[test]
    fn branching_tree_explores_all_branches() {
        // Root 0 has two IRQ entries (1 and 2); each has its own requester.
        let graph: RequestGraph<u32, u32> = [(1, 0, 10), (2, 0, 11), (3, 1, 30), (4, 2, 40)]
            .into_iter()
            .collect();
        let ownership: HashMap<u32, Vec<u32>> =
            [(3, vec![99]), (4, vec![99])].into_iter().collect();
        let rings = find_rings(&graph, 0, &[99], owns(&ownership), shorter_first(5));
        assert_eq!(rings.len(), 2);
        assert!(rings.iter().all(|r| r.len() == 3));
        let closers: Vec<u32> = rings
            .iter()
            .map(|r| r.download_of(&0).unwrap().uploader)
            .collect();
        assert!(closers.contains(&3) && closers.contains(&4));
    }

    #[test]
    fn cycles_in_the_graph_do_not_loop_the_search() {
        // 1 <-> 2 request from each other, and 1 requests from 0.
        let graph: RequestGraph<u32, u32> =
            [(1, 0, 10), (2, 1, 20), (1, 2, 21)].into_iter().collect();
        let ownership: HashMap<u32, Vec<u32>> = [(2, vec![99])].into_iter().collect();
        let rings = find_rings(&graph, 0, &[99], owns(&ownership), shorter_first(6));
        assert_eq!(rings.len(), 1);
        assert_eq!(rings[0].len(), 3);
    }

    #[test]
    fn root_must_not_appear_twice() {
        // 0 itself requested from 1; the search must not route through 0 again.
        let graph: RequestGraph<u32, u32> =
            [(1, 0, 10), (0, 1, 11), (2, 0, 12)].into_iter().collect();
        let ownership: HashMap<u32, Vec<u32>> =
            [(1, vec![11]), (2, vec![11])].into_iter().collect();
        let rings = find_rings(&graph, 0, &[11], owns(&ownership), shorter_first(5));
        for ring in &rings {
            let members = ring.members();
            let zero_count = members.iter().filter(|p| **p == 0).count();
            assert_eq!(zero_count, 1);
        }
    }

    #[test]
    fn expansion_budget_bounds_work() {
        // A star of many requesters; a tiny budget still terminates quickly
        // and returns at most what it could explore.
        let mut graph: RequestGraph<u32, u32> = RequestGraph::new();
        for i in 1..=100 {
            graph.add_request(i, 0, i);
        }
        let ownership: HashMap<u32, Vec<u32>> = (1..=100).map(|i| (i, vec![999])).collect();
        let search = RingSearch::new(shorter_first(2)).with_expansion_budget(10);
        let rings = search.find(&graph, 0, &[999], owns(&ownership));
        assert!(rings.len() <= 10);
        assert!(!rings.is_empty());
    }

    #[test]
    fn fanout_limits_deeper_levels_but_not_the_irq_scan() {
        // The provider's own IRQ (level 1) is always scanned in full, so all
        // fifty pairwise rings are found even with a small fanout.
        let mut graph: RequestGraph<u32, u32> = RequestGraph::new();
        for i in 1..=50 {
            graph.add_request(i, 0, i);
        }
        let ownership: HashMap<u32, Vec<u32>> = (1..=50).map(|i| (i, vec![999])).collect();
        let search = RingSearch::new(shorter_first(2)).with_fanout(5);
        let rings = search.find(&graph, 0, &[999], owns(&ownership));
        assert_eq!(rings.len(), 50);
    }

    #[test]
    fn fanout_limits_children_below_the_first_level() {
        // One IRQ entry (peer 1) with 20 requesters behind it; only `fanout`
        // of those second-level peers are explored.
        let mut graph: RequestGraph<u32, u32> = RequestGraph::new();
        graph.add_request(1, 0, 500);
        for i in 2..=21 {
            graph.add_request(i, 1, i);
        }
        let ownership: HashMap<u32, Vec<u32>> = (2..=21).map(|i| (i, vec![999])).collect();
        let search = RingSearch::new(shorter_first(3)).with_fanout(4);
        let rings = search.find(&graph, 0, &[999], owns(&ownership));
        assert_eq!(rings.len(), 4);
        let all = RingSearch::new(shorter_first(3)).find(&graph, 0, &[999], owns(&ownership));
        assert_eq!(all.len(), 20);
    }

    #[test]
    fn budget_in_bfs_order_still_finds_shallow_rings_first() {
        // A deep chain plus a shallow pairwise option: even with a tiny
        // budget, the pairwise ring is found because exploration is BFS.
        let graph: RequestGraph<u32, u32> = [(1, 0, 10), (2, 1, 20), (3, 2, 30), (4, 3, 40)]
            .into_iter()
            .collect();
        let ownership: HashMap<u32, Vec<u32>> =
            [(1, vec![99]), (4, vec![99])].into_iter().collect();
        let search = RingSearch::new(shorter_first(5)).with_expansion_budget(2);
        let rings = search.find(&graph, 0, &[99], owns(&ownership));
        assert!(!rings.is_empty());
        assert!(rings[0].is_pairwise());
    }

    #[test]
    fn traced_search_reports_visited_peers_as_deps() {
        // Chain 1 -> 0, 2 -> 1, 3 -> 2 plus an isolated edge 9 -> 8.
        let graph: RequestGraph<u32, u32> = [(1, 0, 10), (2, 1, 20), (3, 2, 30), (9, 8, 90)]
            .into_iter()
            .collect();
        let ownership: HashMap<u32, Vec<u32>> = [(2, vec![99])].into_iter().collect();
        let search = RingSearch::new(shorter_first(4));
        let trace = search.find_traced(&graph, 0, &[99], owns(&ownership));
        assert_eq!(trace.rings.len(), 1);
        // Root 0 and frontier peers 1, 2 and 3 are deps (3 closes no ring but
        // was probed); the disconnected peers 8 and 9 are not.
        assert_eq!(trace.deps, vec![0, 1, 2, 3]);
    }

    #[test]
    fn edge_deps_cover_only_peers_whose_queues_were_read() {
        // Chain 1 -> 0, 2 -> 1, 3 -> 2 with max ring size 3: the search reads
        // the queues of 0 (seed) and 1 (expanded at depth 1); peer 2 enters
        // the frontier at the depth bound, so its queue is never read, and
        // peer 3 never enters at all.
        let graph: RequestGraph<u32, u32> =
            [(1, 0, 10), (2, 1, 20), (3, 2, 30)].into_iter().collect();
        let ownership: HashMap<u32, Vec<u32>> = [(2, vec![99])].into_iter().collect();
        let trace =
            RingSearch::new(shorter_first(3)).find_traced(&graph, 0, &[99], owns(&ownership));
        assert_eq!(trace.rings.len(), 1);
        assert_eq!(trace.deps, vec![0, 1, 2]);
        assert_eq!(trace.edge_deps, vec![0, 1]);
    }

    #[test]
    fn edge_deps_are_a_subset_of_deps() {
        let graph: RequestGraph<u32, u32> = [(1, 0, 10), (2, 1, 20), (3, 2, 30), (2, 0, 11)]
            .into_iter()
            .collect();
        let ownership: HashMap<u32, Vec<u32>> =
            [(2, vec![99]), (3, vec![99])].into_iter().collect();
        for policy in [shorter_first(5), longer_first(4), shorter_first(2)] {
            let trace = RingSearch::new(policy).find_traced(&graph, 0, &[99], owns(&ownership));
            for peer in &trace.edge_deps {
                assert!(trace.deps.contains(peer), "edge dep {peer} not in deps");
            }
        }
    }

    #[test]
    fn scratch_backed_searches_equal_fresh_ones_across_mutations() {
        let mut graph: RequestGraph<u32, u32> = [(1, 0, 10), (2, 1, 20), (2, 0, 11), (3, 2, 30)]
            .into_iter()
            .collect();
        let ownership: HashMap<u32, Vec<u32>> = [(1, vec![99]), (2, vec![99]), (3, vec![98])]
            .into_iter()
            .collect();
        let search = RingSearch::new(shorter_first(4));
        let mut scratch = SearchScratch::new();
        for round in 0..4u32 {
            for root in 0..4u32 {
                let shared =
                    search.find_traced_in(&mut scratch, &graph, root, &[98, 99], owns(&ownership));
                let fresh = search.find_traced(&graph, root, &[98, 99], owns(&ownership));
                assert_eq!(shared, fresh, "root {root} round {round}");
            }
            assert!(scratch.snapshot_len() > 0, "snapshot is populated");
            // Mutate the graph: the snapshot must refresh on the next search.
            graph.add_request(round + 4, 0, 40 + round);
        }
    }

    #[test]
    fn advanced_scratch_keeps_untouched_snapshots_and_stays_exact() {
        let mut graph: RequestGraph<u32, u32> = [(1, 0, 10), (2, 1, 20), (2, 0, 11), (3, 2, 30)]
            .into_iter()
            .collect();
        let ownership: HashMap<u32, Vec<u32>> = [(1, vec![99]), (2, vec![99]), (3, vec![98])]
            .into_iter()
            .collect();
        let search = RingSearch::new(shorter_first(4));
        let mut scratch = SearchScratch::new();
        graph.take_dirty_edges();
        let mut drained = graph.generation();
        for round in 0..5u32 {
            for root in 0..4u32 {
                let shared =
                    search.find_traced_in(&mut scratch, &graph, root, &[98, 99], owns(&ownership));
                let fresh = search.find_traced(&graph, root, &[98, 99], owns(&ownership));
                assert_eq!(shared, fresh, "root {root} round {round}");
            }
            let populated = scratch.snapshot_len();
            assert!(populated > 0);
            // Mutate and advance incrementally: only the touched provider's
            // snapshot is forgotten, everything else stays warm — and the
            // next round must still agree with fresh searches.
            graph.add_request(round + 4, 0, 40 + round);
            let to = graph.generation();
            scratch.advance(
                drained,
                to,
                graph
                    .take_dirty_edges()
                    .into_iter()
                    .map(|(provider, _, _)| (provider, true)),
            );
            drained = to;
            assert!(
                scratch.snapshot_len() >= populated - 2,
                "advance must only forget the changed provider"
            );
        }
        // A stale `from` generation must drop the whole snapshot, never
        // reuse it.
        scratch.advance(drained + 17, drained + 18, std::iter::empty());
        assert_eq!(scratch.snapshot_len(), 0);
    }

    #[test]
    fn scratches_are_send_and_shardable_across_threads() {
        // Compile-time guarantee backing the sharded scheduler: a scratch
        // can move to a worker thread, search against a shared graph there,
        // and come back warm.
        fn assert_send<T: Send>(_: &T) {}
        let graph: RequestGraph<u32, u32> = [(1, 0, 10), (2, 1, 20)].into_iter().collect();
        let ownership: HashMap<u32, Vec<u32>> = [(2, vec![99])].into_iter().collect();
        let search = RingSearch::new(shorter_first(4));
        let mut scratches: Vec<SearchScratch<u32, u32>> =
            (0..2).map(|_| SearchScratch::new()).collect();
        assert_send(&scratches[0]);
        let fresh = search.find_traced(&graph, 0, &[99], owns(&ownership));
        std::thread::scope(|scope| {
            for scratch in &mut scratches {
                let (graph, ownership, fresh) = (&graph, &ownership, &fresh);
                scope.spawn(move || {
                    let shared = search.find_traced_in(scratch, graph, 0, &[99], owns(ownership));
                    assert_eq!(&shared, fresh);
                });
            }
        });
        // Both scratches come back warm and usable on this thread.
        for scratch in &mut scratches {
            assert!(scratch.snapshot_len() > 0);
            let again = search.find_traced_in(scratch, &graph, 0, &[99], owns(&ownership));
            assert_eq!(again, fresh);
        }
    }

    #[test]
    fn traced_search_with_no_wants_depends_only_on_the_root() {
        let graph: RequestGraph<u32, u32> = [(1, 0, 10)].into_iter().collect();
        let trace =
            RingSearch::new(shorter_first(5)).find_traced(&graph, 0, &[], |_: &u32, _: &u32| true);
        assert!(trace.rings.is_empty());
        assert_eq!(trace.deps, vec![0]);
    }

    #[test]
    fn traced_and_plain_search_agree() {
        let graph: RequestGraph<u32, u32> = [(1, 0, 10), (2, 1, 20), (2, 0, 11), (3, 2, 30)]
            .into_iter()
            .collect();
        let ownership: HashMap<u32, Vec<u32>> = [(1, vec![99]), (2, vec![99]), (3, vec![98])]
            .into_iter()
            .collect();
        for policy in [shorter_first(4), longer_first(4)] {
            let search = RingSearch::new(policy);
            let plain = search.find(&graph, 0, &[98, 99], owns(&ownership));
            let traced = search.find_traced(&graph, 0, &[98, 99], owns(&ownership));
            assert_eq!(plain, traced.rings);
        }
    }

    #[test]
    fn provider_not_in_tree_is_not_a_ring() {
        // Peer 5 owns the wanted object but has no request path to the root.
        let graph: RequestGraph<u32, u32> = [(1, 0, 10)].into_iter().collect();
        let ownership: HashMap<u32, Vec<u32>> = [(5, vec![99])].into_iter().collect();
        let rings = find_rings(&graph, 0, &[99], owns(&ownership), shorter_first(5));
        assert!(rings.is_empty());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_graph() -> impl Strategy<Value = RequestGraph<u8, u8>> {
            proptest::collection::vec((0u8..10, 0u8..10, 0u8..20), 0..60).prop_map(|edges| {
                edges
                    .into_iter()
                    .filter(|(r, p, _)| r != p)
                    .collect::<RequestGraph<u8, u8>>()
            })
        }

        proptest! {
            #[test]
            fn rings_satisfy_structural_invariants(
                graph in arb_graph(),
                root in 0u8..10,
                wants in proptest::collection::vec(0u8..20, 1..4),
                owned in proptest::collection::hash_map(0u8..10, proptest::collection::vec(0u8..20, 0..4), 0..10),
                longer in proptest::bool::ANY,
                max_ring in 2usize..6,
            ) {
                let policy = if longer { longer_first(max_ring) } else { shorter_first(max_ring) };
                let provides = |p: &u8, o: &u8| owned.get(p).is_some_and(|objs| objs.contains(o));
                let rings = find_rings(&graph, root, &wants, provides, policy);
                for ring in &rings {
                    // Bounded size, contains the root, all edges except the
                    // closing one correspond to existing requests.
                    prop_assert!(ring.len() >= 2 && ring.len() <= max_ring);
                    prop_assert!(ring.contains(&root));
                    let closing = ring.download_of(&root).unwrap();
                    prop_assert!(provides(&closing.uploader, &closing.object));
                    prop_assert!(wants.contains(&closing.object));
                    for edge in ring.edges() {
                        if edge.downloader != root {
                            prop_assert!(graph.has_request(edge.downloader, edge.uploader, edge.object));
                        }
                    }
                }
            }

            #[test]
            fn preference_ordering_is_respected(
                graph in arb_graph(),
                root in 0u8..10,
                wants in proptest::collection::vec(0u8..20, 1..4),
                owned in proptest::collection::hash_map(0u8..10, proptest::collection::vec(0u8..20, 0..4), 0..10),
            ) {
                let provides = |p: &u8, o: &u8| owned.get(p).is_some_and(|objs| objs.contains(o));
                let shorter = find_rings(&graph, root, &wants, provides, shorter_first(5));
                let longer = find_rings(&graph, root, &wants, provides, longer_first(5));
                prop_assert_eq!(shorter.len(), longer.len());
                for w in shorter.windows(2) {
                    prop_assert!(w[0].len() <= w[1].len());
                }
                for w in longer.windows(2) {
                    prop_assert!(w[0].len() >= w[1].len());
                }
            }
        }
    }
}
