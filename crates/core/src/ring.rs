//! Exchange rings: validated cycles of simultaneous transfers.

use std::collections::BTreeSet;
use std::fmt;

use crate::Key;

/// One directed transfer inside an exchange ring: `uploader` serves `object`
/// to `downloader`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RingEdge<P, O> {
    /// The peer uploading the object.
    pub uploader: P,
    /// The peer receiving the object.
    pub downloader: P,
    /// The object being transferred on this edge.
    pub object: O,
}

/// Error returned when a proposed ring is not a valid exchange cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RingError {
    /// A ring needs at least two members (a pairwise exchange).
    TooSmall,
    /// A peer appears more than once in the ring.
    DuplicatePeer(String),
    /// The edges do not form a single closed cycle.
    NotACycle,
}

impl fmt::Display for RingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RingError::TooSmall => write!(f, "an exchange ring needs at least two peers"),
            RingError::DuplicatePeer(p) => write!(f, "peer {p} appears more than once in the ring"),
            RingError::NotACycle => write!(f, "the edges do not form a single closed cycle"),
        }
    }
}

impl std::error::Error for RingError {}

/// A feasible *n*-way exchange: a closed cycle of simultaneous transfers.
///
/// Every peer in the ring uploads exactly one object (to its predecessor in
/// the cycle of requests) and downloads exactly one object (from its
/// successor).  A ring of two peers is a pairwise exchange.
///
/// # Example
///
/// ```
/// use exchange::{ExchangeRing, RingEdge};
///
/// let ring = ExchangeRing::new(vec![
///     RingEdge { uploader: "bob", downloader: "alice", object: 1 },
///     RingEdge { uploader: "alice", downloader: "bob", object: 2 },
/// ]).unwrap();
/// assert!(ring.is_pairwise());
/// assert_eq!(ring.len(), 2);
/// assert_eq!(ring.upload_of(&"alice").unwrap().object, 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExchangeRing<P: Key, O: Key> {
    edges: Vec<RingEdge<P, O>>,
}

impl<P: Key, O: Key> ExchangeRing<P, O> {
    /// Validates and wraps a list of edges as an exchange ring.
    ///
    /// The edges must form one closed cycle over distinct peers (in any
    /// order); they are stored in cycle order starting from the first edge.
    ///
    /// # Errors
    ///
    /// Returns a [`RingError`] describing why the edges are not a valid ring.
    pub fn new(edges: Vec<RingEdge<P, O>>) -> Result<Self, RingError> {
        if edges.len() < 2 {
            return Err(RingError::TooSmall);
        }
        let uploaders: BTreeSet<P> = edges.iter().map(|e| e.uploader).collect();
        let downloaders: BTreeSet<P> = edges.iter().map(|e| e.downloader).collect();
        if uploaders.len() != edges.len() {
            let mut seen = BTreeSet::new();
            for e in &edges {
                if !seen.insert(e.uploader) {
                    return Err(RingError::DuplicatePeer(format!("{:?}", e.uploader)));
                }
            }
        }
        if downloaders.len() != edges.len() || uploaders != downloaders {
            return Err(RingError::NotACycle);
        }

        // Re-order edges into cycle order starting from the first edge and
        // check that following downloader -> uploader chains visits everyone.
        let mut ordered = Vec::with_capacity(edges.len());
        let mut current = edges[0];
        ordered.push(current);
        for _ in 1..edges.len() {
            let next = edges
                .iter()
                .find(|e| e.uploader == current.downloader)
                .copied()
                .ok_or(RingError::NotACycle)?;
            if ordered.contains(&next) {
                return Err(RingError::NotACycle);
            }
            ordered.push(next);
            current = next;
        }
        if ordered.last().expect("non-empty").downloader != ordered[0].uploader {
            return Err(RingError::NotACycle);
        }
        Ok(ExchangeRing { edges: ordered })
    }

    /// Number of peers (equivalently, edges) in the ring.
    #[must_use]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Exchange rings are never empty; provided for API completeness.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Whether this is a 2-way (pairwise) exchange.
    #[must_use]
    pub fn is_pairwise(&self) -> bool {
        self.edges.len() == 2
    }

    /// The edges in cycle order.
    #[must_use]
    pub fn edges(&self) -> &[RingEdge<P, O>] {
        &self.edges
    }

    /// The distinct peers participating in the ring, in cycle order starting
    /// from the first edge's uploader.
    #[must_use]
    pub fn members(&self) -> Vec<P> {
        self.edges.iter().map(|e| e.uploader).collect()
    }

    /// Whether `peer` participates in the ring.
    #[must_use]
    pub fn contains(&self, peer: &P) -> bool {
        self.edges.iter().any(|e| e.uploader == *peer)
    }

    /// The edge on which `peer` uploads, if it is a member.
    #[must_use]
    pub fn upload_of(&self, peer: &P) -> Option<RingEdge<P, O>> {
        self.edges.iter().copied().find(|e| e.uploader == *peer)
    }

    /// The edge on which `peer` downloads, if it is a member.
    #[must_use]
    pub fn download_of(&self, peer: &P) -> Option<RingEdge<P, O>> {
        self.edges.iter().copied().find(|e| e.downloader == *peer)
    }
}

impl<P: Key, O: Key> fmt::Display for ExchangeRing<P, O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-way ring:", self.len())?;
        for e in &self.edges {
            write!(f, " {:?}-[{:?}]->{:?}", e.uploader, e.object, e.downloader)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(u: u32, d: u32, o: u32) -> RingEdge<u32, u32> {
        RingEdge {
            uploader: u,
            downloader: d,
            object: o,
        }
    }

    #[test]
    fn pairwise_ring_is_valid() {
        let ring = ExchangeRing::new(vec![edge(1, 2, 10), edge(2, 1, 20)]).unwrap();
        assert!(ring.is_pairwise());
        assert_eq!(ring.members(), vec![1, 2]);
        assert!(ring.contains(&1));
        assert!(!ring.contains(&3));
        assert_eq!(ring.upload_of(&2).unwrap().object, 20);
        assert_eq!(ring.download_of(&2).unwrap().object, 10);
    }

    #[test]
    fn three_way_ring_orders_edges_into_cycle() {
        // Provide edges out of cycle order; constructor should order them.
        let ring = ExchangeRing::new(vec![edge(1, 2, 10), edge(3, 1, 30), edge(2, 3, 20)]).unwrap();
        assert_eq!(ring.len(), 3);
        let members = ring.members();
        assert_eq!(members[0], 1);
        // Following the cycle: 1 uploads to 2, 2 uploads to 3, 3 uploads to 1.
        assert_eq!(ring.edges()[0].downloader, 2);
        assert_eq!(ring.edges()[1].uploader, 2);
        assert_eq!(ring.edges()[2].downloader, 1);
    }

    #[test]
    fn every_member_uploads_and_downloads_once() {
        let ring = ExchangeRing::new(vec![edge(1, 2, 10), edge(2, 3, 20), edge(3, 1, 30)]).unwrap();
        for p in ring.members() {
            assert!(ring.upload_of(&p).is_some());
            assert!(ring.download_of(&p).is_some());
        }
    }

    #[test]
    fn single_edge_is_too_small() {
        assert_eq!(
            ExchangeRing::new(vec![edge(1, 2, 10)]).unwrap_err(),
            RingError::TooSmall
        );
        assert_eq!(
            ExchangeRing::<u32, u32>::new(vec![]).unwrap_err(),
            RingError::TooSmall
        );
    }

    #[test]
    fn duplicate_uploader_is_rejected() {
        let err =
            ExchangeRing::new(vec![edge(1, 2, 10), edge(1, 3, 11), edge(3, 1, 12)]).unwrap_err();
        assert!(matches!(err, RingError::DuplicatePeer(_)) || err == RingError::NotACycle);
    }

    #[test]
    fn disconnected_edges_are_rejected() {
        // Two 2-cycles glued together are not a single cycle.
        let err = ExchangeRing::new(vec![
            edge(1, 2, 10),
            edge(2, 1, 11),
            edge(3, 4, 12),
            edge(4, 3, 13),
        ])
        .unwrap_err();
        assert_eq!(err, RingError::NotACycle);
    }

    #[test]
    fn open_chain_is_rejected() {
        let err = ExchangeRing::new(vec![edge(1, 2, 10), edge(2, 3, 11)]).unwrap_err();
        assert_eq!(err, RingError::NotACycle);
    }

    #[test]
    fn display_mentions_size() {
        let ring = ExchangeRing::new(vec![edge(1, 2, 10), edge(2, 1, 20)]).unwrap();
        assert!(ring.to_string().starts_with("2-way ring:"));
    }
}
