//! Bloom-filter summaries of request trees (the paper's Section V sketch).

use std::hash::Hash;

use bloom::{BloomParams, LeveledSummary};

use crate::{Key, RequestGraph, RequestTree};

/// A space-efficient, probabilistic stand-in for a full [`RequestTree`].
///
/// Instead of shipping the whole request tree with every request, a peer can
/// ship one Bloom filter per tree level.  A provider can then *detect* that a
/// ring probably exists (a known provider of a wanted object appears in the
/// summary) and, if so, resolve the actual ring hop-by-hop.  The price is a
/// small false-positive probability: the detection may claim a ring that the
/// exact search cannot find.
///
/// # Example
///
/// ```
/// use exchange::{BloomRingIndex, RequestGraph};
///
/// let graph: RequestGraph<u32, u32> = [(1, 0, 10), (2, 1, 20)].into_iter().collect();
/// let index = BloomRingIndex::build(&graph, 0, 4);
/// // Peer 2 sits two levels below the root, so a ring through it has 3 peers.
/// assert_eq!(index.ring_size_hint(&2), Some(3));
/// assert_eq!(index.ring_size_hint(&7), None);
/// assert!(index.byte_size() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct BloomRingIndex<P: Key + Hash> {
    root: P,
    summary: LeveledSummary<P>,
    exact_nodes: usize,
}

impl<P: Key + Hash> BloomRingIndex<P> {
    /// Builds the summary for `root` from the request graph, down to
    /// `max_depth` levels, with default Bloom sizing.
    #[must_use]
    pub fn build<O: Key>(graph: &RequestGraph<P, O>, root: P, max_depth: usize) -> Self {
        Self::build_with_params(graph, root, max_depth, BloomParams::default())
    }

    /// Builds the summary with explicit per-level Bloom parameters.
    #[must_use]
    pub fn build_with_params<O: Key>(
        graph: &RequestGraph<P, O>,
        root: P,
        max_depth: usize,
        params: BloomParams,
    ) -> Self {
        let tree = RequestTree::build(graph, root, max_depth);
        let mut summary = LeveledSummary::with_params(max_depth, params);
        for node in tree.nodes() {
            summary.insert(node.depth - 1, &node.peer);
        }
        BloomRingIndex {
            root,
            summary,
            exact_nodes: tree.len(),
        }
    }

    /// The provider this summary was built for.
    #[must_use]
    pub fn root(&self) -> P {
        self.root
    }

    /// Whether `peer` probably appears somewhere in the summarised tree.
    #[must_use]
    pub fn may_contain(&self, peer: &P) -> bool {
        self.summary.contains(peer)
    }

    /// If `peer` appears in the summary, the size of the smallest ring it
    /// could close (level 0 → pairwise → 2, level 1 → 3-way, ...).
    #[must_use]
    pub fn ring_size_hint(&self, peer: &P) -> Option<usize> {
        self.summary.depth_of(peer).map(|level| level + 2)
    }

    /// Checks whether any of `candidate_providers` (peers known to own an
    /// object the root wants) probably closes a ring, returning the best
    /// (smallest) hinted ring size.
    #[must_use]
    pub fn best_hint<'a, I>(&self, candidate_providers: I) -> Option<(P, usize)>
    where
        I: IntoIterator<Item = &'a P>,
        P: 'a,
    {
        candidate_providers
            .into_iter()
            .filter_map(|p| self.ring_size_hint(p).map(|size| (*p, size)))
            .min_by_key(|(_, size)| *size)
    }

    /// Number of peers in the exact tree this summary replaces.
    #[must_use]
    pub fn exact_nodes(&self) -> usize {
        self.exact_nodes
    }

    /// Wire size of the summary in bytes.
    #[must_use]
    pub fn byte_size(&self) -> usize {
        self.summary.byte_size()
    }

    /// Space saving relative to shipping the exact tree with `id_bytes`-sized
    /// identifiers (values > 1 mean the summary is smaller).
    #[must_use]
    pub fn compression_ratio(&self, id_bytes: usize) -> f64 {
        let exact = (self.exact_nodes * (2 * id_bytes + 4)).max(1);
        exact as f64 / self.byte_size().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> RequestGraph<u32, u32> {
        [(1, 0, 10), (2, 1, 20), (3, 2, 30), (4, 3, 40)]
            .into_iter()
            .collect()
    }

    #[test]
    fn hints_match_exact_tree_depths() {
        let index = BloomRingIndex::build(&chain(), 0, 5);
        assert_eq!(index.ring_size_hint(&1), Some(2));
        assert_eq!(index.ring_size_hint(&2), Some(3));
        assert_eq!(index.ring_size_hint(&4), Some(5));
        assert!(index.may_contain(&3));
        assert_eq!(index.exact_nodes(), 4);
        assert_eq!(index.root(), 0);
    }

    #[test]
    fn depth_bound_is_respected() {
        let index = BloomRingIndex::build(&chain(), 0, 2);
        assert_eq!(index.ring_size_hint(&2), Some(3));
        assert_eq!(index.ring_size_hint(&4), None);
    }

    #[test]
    fn best_hint_prefers_smaller_rings() {
        let index = BloomRingIndex::build(&chain(), 0, 5);
        let candidates = [4u32, 2u32];
        let (peer, size) = index.best_hint(candidates.iter()).unwrap();
        assert_eq!(peer, 2);
        assert_eq!(size, 3);
        assert!(index.best_hint([99u32].iter()).is_none());
    }

    #[test]
    fn empty_irq_gives_empty_summary() {
        let graph: RequestGraph<u32, u32> = RequestGraph::new();
        let index = BloomRingIndex::build(&graph, 0, 5);
        assert!(!index.may_contain(&1));
        assert_eq!(index.byte_size(), 0);
        assert_eq!(index.exact_nodes(), 0);
    }

    #[test]
    fn summary_is_much_smaller_than_large_exact_tree() {
        // A star with many requesters: the exact tree ships hundreds of ids,
        // the summary ships one Bloom filter.
        let mut graph: RequestGraph<u32, u32> = RequestGraph::new();
        for i in 1..=500 {
            graph.add_request(i, 0, i);
        }
        let index = BloomRingIndex::build(&graph, 0, 5);
        assert!(index.compression_ratio(20) > 1.0);
    }

    #[test]
    fn no_false_negatives() {
        let mut graph: RequestGraph<u32, u32> = RequestGraph::new();
        for i in 1..=50 {
            graph.add_request(i, 0, i);
            graph.add_request(i + 100, i, i + 100);
        }
        let index = BloomRingIndex::build(&graph, 0, 5);
        for i in 1..=50 {
            assert!(index.may_contain(&i));
            assert!(index.may_contain(&(i + 100)));
        }
    }
}
