//! The directed request graph.

use std::collections::{BTreeMap, BTreeSet};

use crate::Key;

/// One outstanding request: `requester` has asked `provider` for `object`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Request<P, O> {
    /// The peer that issued the request.
    pub requester: P,
    /// The peer the request was sent to (which stores the object).
    pub provider: P,
    /// The requested object.
    pub object: O,
}

/// The directed graph **G** of Section III-A.
///
/// Vertices are peers; a labelled edge from `R` to `P` with label `o`
/// represents an outstanding request from `R` to `P` for object `o`.  Any
/// cycle of length *n* in this graph is a feasible *n*-way exchange.
///
/// The graph is indexed both by provider (a provider's incoming edges are its
/// incoming-request queue) and by requester (a peer's outgoing requests), so
/// both the ring search and request-queue maintenance are cheap.
///
/// For incremental consumers (candidate caches keyed on search results), the
/// graph tracks a monotonically increasing [`generation`](Self::generation)
/// and a *dirty log* of mutations since it was last drained, in two views:
///
/// * the classic peer view ([`take_dirty`](Self::take_dirty)) — every peer
///   incident to a changed edge, on either side;
/// * the entry-level edge view ([`take_dirty_edges`](Self::take_dirty_edges))
///   — `(provider, object)` pairs, one per changed edge.  Only the provider
///   endpoint is reported: a ring search reads *incoming*-request queues
///   exclusively, so the requester side of an edge can never affect a cached
///   search result.
///
/// Draining either view clears the whole log (they are two projections of the
/// same mutations; a consumer picks one).  Equality ignores all bookkeeping:
/// two graphs with the same edges compare equal regardless of their mutation
/// history.
///
/// # Example
///
/// ```
/// use exchange::RequestGraph;
///
/// let mut g: RequestGraph<&str, u32> = RequestGraph::new();
/// g.add_request("alice", "bob", 7);
/// assert!(g.has_request("alice", "bob", 7));
/// assert_eq!(g.incoming("bob").count(), 1);
/// assert_eq!(g.outgoing("alice").count(), 1);
/// assert!(g.take_dirty().into_iter().eq(["alice", "bob"]));
/// ```
#[derive(Debug, Clone)]
pub struct RequestGraph<P: Key, O: Key> {
    /// provider -> set of (requester, object)
    incoming: BTreeMap<P, BTreeSet<(P, O)>>,
    /// requester -> set of (provider, object)
    outgoing: BTreeMap<P, BTreeSet<(P, O)>>,
    len: usize,
    /// Bumped on every successful mutation.
    generation: u64,
    /// Peers whose incident edge set changed since the last drain.
    dirty: BTreeSet<P>,
    /// `(provider, requester, object)` of every edge changed since the last
    /// drain.
    dirty_edges: BTreeSet<(P, P, O)>,
}

impl<P: Key, O: Key> PartialEq for RequestGraph<P, O> {
    fn eq(&self, other: &Self) -> bool {
        // Mutation-tracking state is bookkeeping, not graph identity.
        self.incoming == other.incoming && self.outgoing == other.outgoing
    }
}

impl<P: Key, O: Key> Eq for RequestGraph<P, O> {}

impl<P: Key, O: Key> RequestGraph<P, O> {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> Self {
        RequestGraph {
            incoming: BTreeMap::new(),
            outgoing: BTreeMap::new(),
            len: 0,
            generation: 0,
            dirty: BTreeSet::new(),
            dirty_edges: BTreeSet::new(),
        }
    }

    /// A counter bumped on every successful mutation.
    ///
    /// Consumers that cache derived data (e.g. ring-search candidates) can
    /// compare generations to detect that *something* changed; the
    /// [dirty set](Self::take_dirty) says *which peers* changed.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Drains the dirty log and returns its peer view: every peer whose
    /// incident edges changed since the last drain (both endpoints of every
    /// added or removed edge).
    ///
    /// Incremental consumers call this once per query round and invalidate
    /// whatever they derived from the returned peers' neighbourhoods.
    pub fn take_dirty(&mut self) -> BTreeSet<P> {
        self.dirty_edges.clear();
        std::mem::take(&mut self.dirty)
    }

    /// Drains the dirty log and returns its entry-level edge view: the
    /// `(provider, requester, object)` triple of every edge changed since
    /// the last drain, sorted by provider.
    ///
    /// The triple leads with the provider endpoint because that is the side
    /// a ring search reads (incoming request queues); the requester and
    /// object let consumers decide *where in the provider's queue* the edge
    /// sat — e.g. whether it falls inside the fanout-bounded prefix a
    /// depth-limited search actually examined.  Either drain call clears the
    /// whole log.
    pub fn take_dirty_edges(&mut self) -> BTreeSet<(P, P, O)> {
        self.dirty.clear();
        std::mem::take(&mut self.dirty_edges)
    }

    /// Whether any mutation happened since the last drain.
    #[must_use]
    pub fn has_dirty(&self) -> bool {
        !self.dirty.is_empty() || !self.dirty_edges.is_empty()
    }

    /// The undrained peer view of the dirty log, without draining it.
    ///
    /// Checkpointing must capture the pending log exactly — a consumer that
    /// has not drained yet will drain after restore and must see the same
    /// invalidations.
    #[must_use]
    pub fn dirty_peers(&self) -> &BTreeSet<P> {
        &self.dirty
    }

    /// The undrained edge view of the dirty log, without draining it.
    #[must_use]
    pub fn dirty_edge_log(&self) -> &BTreeSet<(P, P, O)> {
        &self.dirty_edges
    }

    /// Rebuilds a graph from checkpointed parts: its edges plus the exact
    /// mutation-tracking state (`generation` and both undrained dirty
    /// views).  The edge count is derived from `edges`.
    #[must_use]
    pub fn from_parts(
        edges: impl IntoIterator<Item = (P, P, O)>,
        generation: u64,
        dirty: BTreeSet<P>,
        dirty_edges: BTreeSet<(P, P, O)>,
    ) -> Self {
        let mut graph: RequestGraph<P, O> = edges.into_iter().collect();
        graph.generation = generation;
        graph.dirty = dirty;
        graph.dirty_edges = dirty_edges;
        graph
    }

    fn mark_edge_dirty(&mut self, requester: P, provider: P, object: O) {
        self.generation += 1;
        self.dirty.insert(requester);
        self.dirty.insert(provider);
        self.dirty_edges.insert((provider, requester, object));
    }

    /// Number of outstanding requests (edges).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the graph has no requests.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Registers a request from `requester` to `provider` for `object`.
    ///
    /// Returns `true` if the request was new, `false` if an identical request
    /// was already registered (the paper allows only one registered request
    /// per (requester, provider, object) triple).
    ///
    /// # Panics
    ///
    /// Panics if `requester == provider`: a peer never requests from itself.
    pub fn add_request(&mut self, requester: P, provider: P, object: O) -> bool {
        assert!(
            requester != provider,
            "a peer cannot request an object from itself ({requester:?})"
        );
        let inserted = self
            .incoming
            .entry(provider)
            .or_default()
            .insert((requester, object));
        if inserted {
            self.outgoing
                .entry(requester)
                .or_default()
                .insert((provider, object));
            self.len += 1;
            self.mark_edge_dirty(requester, provider, object);
        }
        inserted
    }

    /// Removes a specific request; returns `true` if it existed.
    pub fn remove_request(&mut self, requester: P, provider: P, object: O) -> bool {
        let removed = self
            .incoming
            .get_mut(&provider)
            .is_some_and(|set| set.remove(&(requester, object)));
        if removed {
            if let Some(out) = self.outgoing.get_mut(&requester) {
                out.remove(&(provider, object));
            }
            self.len -= 1;
            self.mark_edge_dirty(requester, provider, object);
        }
        removed
    }

    /// Removes every request issued by `requester` for `object`
    /// (towards any provider).  Returns how many were removed.
    ///
    /// Used when a download completes or is abandoned.
    pub fn remove_object_requests(&mut self, requester: P, object: O) -> usize {
        let Some(out) = self.outgoing.get_mut(&requester) else {
            return 0;
        };
        let targets: Vec<P> = out
            .iter()
            .filter(|(_, o)| *o == object)
            .map(|(p, _)| *p)
            .collect();
        for provider in &targets {
            out.remove(&(*provider, object));
            if let Some(inc) = self.incoming.get_mut(provider) {
                inc.remove(&(requester, object));
            }
        }
        self.len -= targets.len();
        for provider in &targets {
            self.mark_edge_dirty(requester, *provider, object);
        }
        targets.len()
    }

    /// Removes every request issued by or directed to `peer` (e.g. the peer
    /// went offline).  Returns how many requests were removed.
    pub fn remove_peer(&mut self, peer: P) -> usize {
        let mut removed = 0;
        if let Some(incoming) = self.incoming.remove(&peer) {
            for (requester, object) in incoming {
                if let Some(out) = self.outgoing.get_mut(&requester) {
                    out.remove(&(peer, object));
                }
                self.mark_edge_dirty(requester, peer, object);
                removed += 1;
            }
        }
        if let Some(outgoing) = self.outgoing.remove(&peer) {
            for (provider, object) in outgoing {
                if let Some(inc) = self.incoming.get_mut(&provider) {
                    inc.remove(&(peer, object));
                }
                self.mark_edge_dirty(peer, provider, object);
                removed += 1;
            }
        }
        self.len -= removed;
        removed
    }

    /// Whether the exact request is registered.
    #[must_use]
    pub fn has_request(&self, requester: P, provider: P, object: O) -> bool {
        self.incoming
            .get(&provider)
            .is_some_and(|set| set.contains(&(requester, object)))
    }

    /// The incoming-request queue of `provider`: `(requester, object)` pairs.
    pub fn incoming(&self, provider: P) -> impl Iterator<Item = Request<P, O>> + '_ {
        self.incoming
            .get(&provider)
            .into_iter()
            .flat_map(move |set| {
                set.iter().map(move |(requester, object)| Request {
                    requester: *requester,
                    provider,
                    object: *object,
                })
            })
    }

    /// Number of requests queued at `provider`.
    #[must_use]
    pub fn incoming_len(&self, provider: P) -> usize {
        self.incoming.get(&provider).map_or(0, BTreeSet::len)
    }

    /// The outgoing requests of `requester`: `(provider, object)` pairs.
    pub fn outgoing(&self, requester: P) -> impl Iterator<Item = Request<P, O>> + '_ {
        self.outgoing
            .get(&requester)
            .into_iter()
            .flat_map(move |set| {
                set.iter().map(move |(provider, object)| Request {
                    requester,
                    provider: *provider,
                    object: *object,
                })
            })
    }

    /// All requests in the graph, in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = Request<P, O>> + '_ {
        self.incoming.iter().flat_map(|(provider, set)| {
            set.iter().map(move |(requester, object)| Request {
                requester: *requester,
                provider: *provider,
                object: *object,
            })
        })
    }

    /// The distinct peers that appear as requester or provider of any edge.
    #[must_use]
    pub fn peers(&self) -> BTreeSet<P> {
        let mut peers = BTreeSet::new();
        for (provider, set) in &self.incoming {
            if !set.is_empty() {
                peers.insert(*provider);
            }
            for (requester, _) in set {
                peers.insert(*requester);
            }
        }
        peers
    }
}

impl<P: Key, O: Key> Default for RequestGraph<P, O> {
    fn default() -> Self {
        RequestGraph::new()
    }
}

impl<P: Key, O: Key> FromIterator<(P, P, O)> for RequestGraph<P, O> {
    fn from_iter<T: IntoIterator<Item = (P, P, O)>>(iter: T) -> Self {
        let mut graph = RequestGraph::new();
        for (requester, provider, object) in iter {
            graph.add_request(requester, provider, object);
        }
        graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query_requests() {
        let mut g: RequestGraph<u32, u32> = RequestGraph::new();
        assert!(g.add_request(1, 2, 100));
        assert!(
            !g.add_request(1, 2, 100),
            "duplicate registration is a no-op"
        );
        assert!(g.add_request(1, 2, 101));
        assert_eq!(g.len(), 2);
        assert!(g.has_request(1, 2, 100));
        assert!(!g.has_request(2, 1, 100));
        assert_eq!(g.incoming_len(2), 2);
        assert_eq!(g.incoming(2).count(), 2);
        assert_eq!(g.outgoing(1).count(), 2);
        assert_eq!(g.outgoing(2).count(), 0);
    }

    #[test]
    fn remove_request() {
        let mut g: RequestGraph<u32, u32> = RequestGraph::new();
        g.add_request(1, 2, 100);
        assert!(g.remove_request(1, 2, 100));
        assert!(!g.remove_request(1, 2, 100));
        assert!(g.is_empty());
        assert_eq!(g.outgoing(1).count(), 0);
    }

    #[test]
    fn remove_object_requests_clears_all_providers() {
        let mut g: RequestGraph<u32, u32> = RequestGraph::new();
        g.add_request(1, 2, 100);
        g.add_request(1, 3, 100);
        g.add_request(1, 3, 200);
        assert_eq!(g.remove_object_requests(1, 100), 2);
        assert_eq!(g.len(), 1);
        assert!(g.has_request(1, 3, 200));
        assert_eq!(g.remove_object_requests(9, 1), 0);
    }

    #[test]
    fn remove_peer_clears_both_directions() {
        let mut g: RequestGraph<u32, u32> = RequestGraph::new();
        g.add_request(1, 2, 100); // 1 -> 2
        g.add_request(2, 3, 200); // 2 -> 3
        g.add_request(3, 1, 300); // 3 -> 1
        assert_eq!(g.remove_peer(2), 2);
        assert_eq!(g.len(), 1);
        assert!(g.has_request(3, 1, 300));
        assert!(!g.has_request(1, 2, 100));
        assert!(!g.has_request(2, 3, 200));
    }

    #[test]
    fn peers_lists_all_endpoints() {
        let g: RequestGraph<u32, u32> = [(1, 2, 10), (3, 2, 11)].into_iter().collect();
        let peers = g.peers();
        assert_eq!(peers, BTreeSet::from([1, 2, 3]));
    }

    #[test]
    fn iteration_is_deterministic() {
        let g: RequestGraph<u32, u32> = [(3, 1, 5), (2, 1, 4), (1, 2, 3)].into_iter().collect();
        let all: Vec<(u32, u32, u32)> = g
            .iter()
            .map(|r| (r.requester, r.provider, r.object))
            .collect();
        assert_eq!(all, vec![(2, 1, 4), (3, 1, 5), (1, 2, 3)]);
    }

    #[test]
    #[should_panic(expected = "request an object from itself")]
    fn self_request_panics() {
        let mut g: RequestGraph<u32, u32> = RequestGraph::new();
        g.add_request(1, 1, 5);
    }

    #[test]
    fn generation_counts_only_effective_mutations() {
        let mut g: RequestGraph<u32, u32> = RequestGraph::new();
        assert_eq!(g.generation(), 0);
        g.add_request(1, 2, 100);
        assert_eq!(g.generation(), 1);
        g.add_request(1, 2, 100); // duplicate: no-op
        assert_eq!(g.generation(), 1);
        g.remove_request(1, 2, 100);
        assert_eq!(g.generation(), 2);
        g.remove_request(1, 2, 100); // already gone: no-op
        assert_eq!(g.generation(), 2);
    }

    #[test]
    fn dirty_set_collects_both_endpoints_and_drains() {
        let mut g: RequestGraph<u32, u32> = RequestGraph::new();
        g.add_request(1, 2, 100);
        g.add_request(3, 2, 101);
        assert!(g.has_dirty());
        assert_eq!(g.take_dirty(), BTreeSet::from([1, 2, 3]));
        assert!(!g.has_dirty());
        assert!(g.take_dirty().is_empty());
        g.remove_object_requests(1, 100);
        assert_eq!(g.take_dirty(), BTreeSet::from([1, 2]));
        g.add_request(4, 2, 102);
        g.take_dirty();
        g.remove_peer(2);
        assert_eq!(g.take_dirty(), BTreeSet::from([2, 3, 4]));
    }

    #[test]
    fn dirty_edges_report_provider_requester_and_object() {
        let mut g: RequestGraph<u32, u32> = RequestGraph::new();
        g.add_request(1, 2, 100);
        g.add_request(3, 2, 101);
        g.add_request(1, 4, 100);
        assert_eq!(
            g.take_dirty_edges(),
            BTreeSet::from([(2, 1, 100), (2, 3, 101), (4, 1, 100)])
        );
        assert!(!g.has_dirty());
        g.remove_request(1, 2, 100);
        assert_eq!(g.take_dirty_edges(), BTreeSet::from([(2, 1, 100)]));
        g.remove_object_requests(3, 101);
        assert_eq!(g.take_dirty_edges(), BTreeSet::from([(2, 3, 101)]));
    }

    #[test]
    fn draining_either_dirty_view_clears_the_whole_log() {
        let mut g: RequestGraph<u32, u32> = RequestGraph::new();
        g.add_request(1, 2, 100);
        assert!(g.has_dirty());
        let _ = g.take_dirty();
        assert!(g.take_dirty_edges().is_empty(), "peer drain clears edges");
        g.add_request(3, 2, 101);
        let _ = g.take_dirty_edges();
        assert!(g.take_dirty().is_empty(), "edge drain clears peers");
        assert!(!g.has_dirty());
    }

    #[test]
    fn remove_peer_marks_dirty_edges_on_both_sides() {
        let mut g: RequestGraph<u32, u32> = RequestGraph::new();
        g.add_request(1, 2, 100); // 2 is provider
        g.add_request(2, 3, 200); // 2 is requester
        g.take_dirty_edges();
        g.remove_peer(2);
        assert_eq!(
            g.take_dirty_edges(),
            BTreeSet::from([(2, 1, 100), (3, 2, 200)])
        );
    }

    #[test]
    fn equality_ignores_mutation_history() {
        let mut a: RequestGraph<u32, u32> = RequestGraph::new();
        a.add_request(1, 2, 100);
        a.add_request(1, 2, 101);
        a.remove_request(1, 2, 101);
        let mut b: RequestGraph<u32, u32> = RequestGraph::new();
        b.add_request(1, 2, 100);
        b.take_dirty();
        assert_eq!(a, b);
        assert_ne!(a.generation(), b.generation());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_edges() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
            proptest::collection::vec((0u8..10, 0u8..10, 0u8..20), 0..60).prop_map(|edges| {
                edges
                    .into_iter()
                    .filter(|(r, p, _)| r != p)
                    .collect::<Vec<_>>()
            })
        }

        proptest! {
            #[test]
            fn len_matches_iteration(edges in arb_edges()) {
                let g: RequestGraph<u8, u8> = edges.iter().copied().collect();
                prop_assert_eq!(g.len(), g.iter().count());
            }

            #[test]
            fn incoming_and_outgoing_are_consistent(edges in arb_edges()) {
                let g: RequestGraph<u8, u8> = edges.iter().copied().collect();
                for req in g.iter() {
                    prop_assert!(g.incoming(req.provider).any(|r| r == req));
                    prop_assert!(g.outgoing(req.requester).any(|r| r == req));
                }
            }

            #[test]
            fn removing_everything_leaves_empty_graph(edges in arb_edges()) {
                let mut g: RequestGraph<u8, u8> = edges.iter().copied().collect();
                let all: Vec<Request<u8, u8>> = g.iter().collect();
                for req in all {
                    g.remove_request(req.requester, req.provider, req.object);
                }
                prop_assert!(g.is_empty());
                prop_assert_eq!(g.iter().count(), 0);
            }
        }
    }
}
