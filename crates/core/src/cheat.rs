//! Cheating models and countermeasures (Section III-B of the paper).
//!
//! Exchange priority creates an incentive to *pretend* to exchange: serve
//! junk, or act as a middleman between two peers that could trade directly.
//! The paper proposes two countermeasures, both modelled here:
//!
//! * **Synchronous block validation** ([`WindowedExchange`]) — exchange one
//!   validated block at a time, optionally growing a window of in-flight
//!   blocks as trust builds.  A cheater's maximum gain is bounded by the
//!   window size, and the achievable exchange rate is limited by
//!   `window × block_size / rtt`.
//! * **A trusted mediator** ([`Mediator`]) — both directions of the exchange
//!   are encrypted with keys known only to the sender and the mediator; the
//!   mediator validates sample blocks and then releases the keys to the
//!   peer named in the (encrypted) peer-of-origin header, so a freeriding
//!   middleman relays bytes it can never decrypt.

use std::collections::BTreeMap;

use crate::Key;

/// Upper bound on the bytes a cheater can obtain before being detected, when
/// blocks are validated synchronously with a window of `window` blocks.
#[must_use]
pub fn max_cheater_gain_bytes(block_bytes: u64, window: u32) -> u64 {
    block_bytes * u64::from(window.max(1))
}

/// The exchange rate (bytes/second) achievable when every block must be
/// validated before the next one is sent, with `window` blocks in flight and
/// a round-trip time of `rtt_secs`.
///
/// # Panics
///
/// Panics if `rtt_secs` is not positive and finite.
#[must_use]
pub fn validated_exchange_rate(block_bytes: u64, window: u32, rtt_secs: f64) -> f64 {
    assert!(
        rtt_secs.is_finite() && rtt_secs > 0.0,
        "round-trip time must be positive, got {rtt_secs}"
    );
    block_bytes as f64 * f64::from(window.max(1)) / rtt_secs
}

/// A synchronous, block-validated exchange with an adaptive window.
///
/// The window starts small (risking at most one block) and grows by one block
/// after each fully validated round, up to `max_window`; any invalid block
/// resets it.  This mirrors the paper's suggestion to "start the exchange
/// with a small window and increase after a number of rounds", so a cheater
/// must serve real data before it can put more than one block at risk.
///
/// # Example
///
/// ```
/// use exchange::cheat::WindowedExchange;
///
/// let mut ex = WindowedExchange::new(16 * 1024, 8);
/// assert_eq!(ex.window(), 1);
/// ex.on_round_validated();
/// ex.on_round_validated();
/// assert_eq!(ex.window(), 3);
/// ex.on_invalid_block();
/// assert_eq!(ex.window(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowedExchange {
    block_bytes: u64,
    window: u32,
    max_window: u32,
    validated_rounds: u32,
    invalid_blocks: u32,
}

impl WindowedExchange {
    /// Creates an exchange with `block_bytes` blocks and a window capped at
    /// `max_window` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `block_bytes` is zero or `max_window` is zero.
    #[must_use]
    pub fn new(block_bytes: u64, max_window: u32) -> Self {
        assert!(block_bytes > 0, "block size must be positive");
        assert!(max_window > 0, "maximum window must be positive");
        WindowedExchange {
            block_bytes,
            window: 1,
            max_window,
            validated_rounds: 0,
            invalid_blocks: 0,
        }
    }

    /// The current window in blocks.
    #[must_use]
    pub fn window(&self) -> u32 {
        self.window
    }

    /// Number of fully validated rounds so far.
    #[must_use]
    pub fn validated_rounds(&self) -> u32 {
        self.validated_rounds
    }

    /// Number of invalid blocks observed so far.
    #[must_use]
    pub fn invalid_blocks(&self) -> u32 {
        self.invalid_blocks
    }

    /// The block size this exchange validates, in bytes.
    #[must_use]
    pub fn block_bytes(&self) -> u64 {
        self.block_bytes
    }

    /// The configured window cap in blocks.
    #[must_use]
    pub fn max_window(&self) -> u32 {
        self.max_window
    }

    /// Rebuilds an exchange from checkpointed parts, preserving the adaptive
    /// window mid-growth.
    ///
    /// # Panics
    ///
    /// Panics on parts no live exchange can produce: zero sizes, or a window
    /// outside `1..=max_window`.
    #[must_use]
    pub fn from_parts(
        block_bytes: u64,
        window: u32,
        max_window: u32,
        validated_rounds: u32,
        invalid_blocks: u32,
    ) -> Self {
        assert!(block_bytes > 0, "block size must be positive");
        assert!(max_window > 0, "maximum window must be positive");
        assert!(
            (1..=max_window).contains(&window),
            "window {window} outside 1..={max_window}"
        );
        WindowedExchange {
            block_bytes,
            window,
            max_window,
            validated_rounds,
            invalid_blocks,
        }
    }

    /// Records a fully validated round; the window grows by one block, up to
    /// the cap.
    pub fn on_round_validated(&mut self) {
        self.validated_rounds += 1;
        self.window = (self.window + 1).min(self.max_window);
    }

    /// Records an invalid block; the window collapses back to one block.
    pub fn on_invalid_block(&mut self) {
        self.invalid_blocks += 1;
        self.window = 1;
    }

    /// The partner's maximum possible gain from cheating right now, in bytes.
    #[must_use]
    pub fn exposure_bytes(&self) -> u64 {
        max_cheater_gain_bytes(self.block_bytes, self.window)
    }

    /// Achievable exchange rate (bytes/second) at the current window, capped
    /// by the transfer slot's own rate.
    #[must_use]
    pub fn effective_rate(&self, rtt_secs: f64, slot_bytes_per_sec: f64) -> f64 {
        validated_exchange_rate(self.block_bytes, self.window, rtt_secs).min(slot_bytes_per_sec)
    }
}

/// One encrypted block handed to the mediator's protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncryptedBlock<P> {
    /// The peer that encrypted and sent the block.
    pub origin: P,
    /// The peer named in the encrypted control header as the intended
    /// recipient of the decryption key.
    pub intended_recipient: P,
    /// Whether the block's content is valid (checksums match the real object).
    pub valid: bool,
}

/// Outcome of a mediated exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MediationOutcome<P: Key> {
    /// Which peers receive a decryption key, and for whose data.
    /// `key_released_to[p] = q` means peer `p` can now decrypt the blocks
    /// originated by peer `q`.
    pub keys_released_to: BTreeMap<P, P>,
    /// Whether the mediator detected cheating on either side.
    pub cheating_detected: bool,
}

impl<P: Key> MediationOutcome<P> {
    /// Whether `peer` ends up able to decrypt anything.
    #[must_use]
    pub fn can_decrypt(&self, peer: &P) -> bool {
        self.keys_released_to.contains_key(peer)
    }
}

/// The trusted mediator of Section III-B.
///
/// Both directions of a (possibly relayed) exchange are encrypted with keys
/// known only to the sending peer and the mediator.  When the transfer
/// completes, the mediator validates a sample of blocks from each side and —
/// only if both sides are clean — releases each side's key *to the peer named
/// in the sender's encrypted control header*.  A middleman that merely
/// relayed blocks is never named there, so it ends up with ciphertext only.
///
/// # Example
///
/// ```
/// use exchange::cheat::{EncryptedBlock, Mediator};
///
/// // Peers 1 and 2 exchange directly; peer 9 relays but contributes nothing.
/// let a_to_b = vec![EncryptedBlock { origin: 1u32, intended_recipient: 2, valid: true }];
/// let b_to_a = vec![EncryptedBlock { origin: 2u32, intended_recipient: 1, valid: true }];
/// let outcome = Mediator::new(2).mediate(&a_to_b, &b_to_a);
/// assert!(outcome.can_decrypt(&1));
/// assert!(outcome.can_decrypt(&2));
/// assert!(!outcome.can_decrypt(&9));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mediator {
    sample_size: usize,
}

impl Mediator {
    /// Creates a mediator that validates up to `sample_size` blocks per side.
    #[must_use]
    pub fn new(sample_size: usize) -> Self {
        Mediator {
            sample_size: sample_size.max(1),
        }
    }

    /// Runs the key-release protocol over the blocks of both directions.
    ///
    /// If any sampled block on either side is invalid, no keys are released
    /// and cheating is flagged.
    #[must_use]
    pub fn mediate<P: Key>(
        &self,
        first_direction: &[EncryptedBlock<P>],
        second_direction: &[EncryptedBlock<P>],
    ) -> MediationOutcome<P> {
        let sample_ok =
            |blocks: &[EncryptedBlock<P>]| blocks.iter().take(self.sample_size).all(|b| b.valid);
        if first_direction.is_empty()
            || second_direction.is_empty()
            || !sample_ok(first_direction)
            || !sample_ok(second_direction)
        {
            return MediationOutcome {
                keys_released_to: BTreeMap::new(),
                cheating_detected: !first_direction.is_empty() && !second_direction.is_empty(),
            };
        }
        let mut keys = BTreeMap::new();
        // Each direction's key goes to the recipient named by the *sender*;
        // the sender's identity is what the key decrypts.
        for blocks in [first_direction, second_direction] {
            let origin = blocks[0].origin;
            let recipient = blocks[0].intended_recipient;
            keys.insert(recipient, origin);
        }
        MediationOutcome {
            keys_released_to: keys,
            cheating_detected: false,
        }
    }
}

impl Default for Mediator {
    fn default() -> Self {
        Mediator::new(4)
    }
}

/// The middleman attack of Section III-B, as a checkable scenario.
///
/// Peer `middleman` tells `left` that it owns what `left` wants, and `right`
/// that it owns what `right` wants, then shuttles blocks between them to get
/// high-priority service without contributing anything.  The function answers
/// whether the attack succeeds, i.e. whether the middleman ends up with
/// usable (decryptable) data, under a given protection scheme.
#[must_use]
pub fn middleman_attack_succeeds(mediated: bool) -> bool {
    // Without the mediator the middleman receives plaintext blocks from both
    // sides and profits.  With the mediator it only ever holds ciphertext: the
    // keys are released to the peers named in the encrypted control headers,
    // which the middleman cannot alter.
    !mediated
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cheater_gain_is_bounded_by_window() {
        assert_eq!(max_cheater_gain_bytes(1_000, 1), 1_000);
        assert_eq!(max_cheater_gain_bytes(1_000, 4), 4_000);
        assert_eq!(
            max_cheater_gain_bytes(1_000, 0),
            1_000,
            "window clamps to 1"
        );
    }

    #[test]
    fn validated_rate_follows_paper_formula() {
        // block / rtt, scaled by the window.
        assert_eq!(validated_exchange_rate(16_384, 1, 0.1), 163_840.0);
        assert_eq!(validated_exchange_rate(16_384, 4, 0.1), 655_360.0);
    }

    #[test]
    #[should_panic(expected = "round-trip")]
    fn zero_rtt_panics() {
        let _ = validated_exchange_rate(1_000, 1, 0.0);
    }

    #[test]
    fn window_grows_and_resets() {
        let mut ex = WindowedExchange::new(1_000, 4);
        assert_eq!(ex.window(), 1);
        assert_eq!(ex.exposure_bytes(), 1_000);
        for _ in 0..10 {
            ex.on_round_validated();
        }
        assert_eq!(ex.window(), 4, "window is capped");
        assert_eq!(ex.exposure_bytes(), 4_000);
        assert_eq!(ex.validated_rounds(), 10);
        ex.on_invalid_block();
        assert_eq!(ex.window(), 1);
        assert_eq!(ex.invalid_blocks(), 1);
    }

    #[test]
    fn effective_rate_is_capped_by_slot() {
        let mut ex = WindowedExchange::new(100_000, 16);
        for _ in 0..16 {
            ex.on_round_validated();
        }
        // Window alone would allow a huge rate; the slot caps it.
        assert_eq!(ex.effective_rate(0.01, 1_250.0), 1_250.0);
        // With a large RTT the validation dominates.
        let slow = WindowedExchange::new(1_000, 16);
        assert!(slow.effective_rate(10.0, 1_250.0) < 1_250.0);
    }

    #[test]
    fn mediator_releases_keys_to_real_participants_only() {
        let a_to_b = vec![EncryptedBlock {
            origin: 1u32,
            intended_recipient: 2,
            valid: true,
        }];
        let b_to_a = vec![EncryptedBlock {
            origin: 2u32,
            intended_recipient: 1,
            valid: true,
        }];
        let outcome = Mediator::new(1).mediate(&a_to_b, &b_to_a);
        assert!(!outcome.cheating_detected);
        assert_eq!(outcome.keys_released_to.get(&2), Some(&1));
        assert_eq!(outcome.keys_released_to.get(&1), Some(&2));
        assert!(!outcome.can_decrypt(&9));
    }

    #[test]
    fn mediator_detects_junk_blocks() {
        let a_to_b = vec![EncryptedBlock {
            origin: 1u32,
            intended_recipient: 2,
            valid: false,
        }];
        let b_to_a = vec![EncryptedBlock {
            origin: 2u32,
            intended_recipient: 1,
            valid: true,
        }];
        let outcome = Mediator::new(1).mediate(&a_to_b, &b_to_a);
        assert!(outcome.cheating_detected);
        assert!(outcome.keys_released_to.is_empty());
        assert!(!outcome.can_decrypt(&1));
        assert!(!outcome.can_decrypt(&2));
    }

    #[test]
    fn mediator_middleman_gets_nothing() {
        // Peers 1 and 2 are the true endpoints; peer 9 relays both directions.
        // The control headers (written by the true senders) name 2 and 1.
        let via_middleman_1 = vec![EncryptedBlock {
            origin: 1u32,
            intended_recipient: 2,
            valid: true,
        }];
        let via_middleman_2 = vec![EncryptedBlock {
            origin: 2u32,
            intended_recipient: 1,
            valid: true,
        }];
        let outcome = Mediator::default().mediate(&via_middleman_1, &via_middleman_2);
        assert!(outcome.can_decrypt(&1));
        assert!(outcome.can_decrypt(&2));
        assert!(
            !outcome.can_decrypt(&9),
            "the relaying middleman never gets a key"
        );
    }

    #[test]
    fn empty_transfer_releases_nothing() {
        let blocks = vec![EncryptedBlock {
            origin: 1u32,
            intended_recipient: 2,
            valid: true,
        }];
        let outcome = Mediator::new(1).mediate(&blocks, &[]);
        assert!(outcome.keys_released_to.is_empty());
        assert!(!outcome.cheating_detected);
    }

    #[test]
    fn middleman_attack_only_succeeds_without_mediation() {
        assert!(middleman_attack_succeeds(false));
        assert!(!middleman_attack_succeeds(true));
    }
}
