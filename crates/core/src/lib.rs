//! Exchange-based incentive mechanisms for peer-to-peer file sharing.
//!
//! This crate implements the core contribution of *"Exchange-Based Incentive
//! Mechanisms for Peer-to-Peer File Sharing"* (Anagnostakis & Greenwald,
//! ICDCS 2004): peers give upload priority to requests that are part of a
//! simultaneous, symmetric **exchange** — either a pairwise swap or an
//! *n-way ring* in which each peer serves its predecessor and is served by
//! its successor.
//!
//! The building blocks are:
//!
//! * [`RequestGraph`] — the directed graph of outstanding requests (an edge
//!   `R → P` labelled `o` means "R has asked P for object o").
//! * [`RequestTree`] — the depth-limited tree a provider assembles from its
//!   incoming-request queue (and the trees piggy-backed on those requests).
//! * [`RingSearch`] / [`find_rings`] — discovery of feasible exchange rings
//!   through the provider, honouring a [`SearchPolicy`] (maximum ring size,
//!   shorter-first or longer-first preference).
//! * [`ExchangeRing`] — a validated ring of `(uploader, downloader, object)`
//!   edges.
//! * [`RingToken`] — the token circulation step that confirms every proposed
//!   member is still willing and able before the ring is activated.
//! * [`ExchangePolicy`] — the four disciplines evaluated in the paper
//!   (no exchange, pairwise only, prefer-longer `N-2-way`, prefer-shorter
//!   `2-N-way`).
//! * [`BloomRingIndex`] — the Bloom-filter request-tree summaries sketched in
//!   the paper's discussion section.
//! * [`cheat`] — models of the cheating/middleman attacks of Section III-B
//!   and the block-validation / mediator countermeasures.
//! * [`mixed`] — the non-ring, mixed object-and-capacity exchange of
//!   Table I / Figure 3.
//!
//! All types are generic over the peer identifier `P` and object identifier
//! `O`; any `Copy + Eq + Ord + Hash + Debug` type works (the simulator uses
//! small integer newtypes).
//!
//! # Example: finding a 3-way ring
//!
//! ```
//! use exchange::{find_rings, RequestGraph, RingPreference, SearchPolicy};
//!
//! // Peer 1 asked peer 0 for object 10; peer 2 asked peer 1 for object 20.
//! let mut graph: RequestGraph<u32, u32> = RequestGraph::new();
//! graph.add_request(1, 0, 10);
//! graph.add_request(2, 1, 20);
//!
//! // Peer 0 wants object 30, which peer 2 happens to store.
//! let wants = [30u32];
//! let provides = |peer: &u32, object: &u32| *peer == 2 && *object == 30;
//!
//! let policy = SearchPolicy::new(5, RingPreference::ShorterFirst);
//! let rings = find_rings(&graph, 0, &wants, provides, policy);
//! assert_eq!(rings.len(), 1);
//! assert_eq!(rings[0].len(), 3); // a 3-way ring: 0 → 1 → 2 → 0
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cheat;
mod graph;
pub mod mixed;
mod policy;
mod ring;
mod search;
mod summary;
mod token;
mod tree;

pub use graph::{Request, RequestGraph};
pub use policy::{ExchangePolicy, RingPreference, SearchPolicy};
pub use ring::{ExchangeRing, RingEdge, RingError};
pub use search::{find_rings, RingSearch, SearchScratch, SearchTrace};
pub use summary::BloomRingIndex;
pub use token::{RingToken, TokenOutcome};
pub use tree::{RequestTree, TreeNode};

use std::fmt::Debug;
use std::hash::Hash;

/// Blanket bound for peer and object identifiers used throughout the crate.
///
/// Implemented automatically for every `Copy + Eq + Ord + Hash + Debug` type;
/// you never implement it by hand.
pub trait Key: Copy + Eq + Ord + Hash + Debug {}

impl<T: Copy + Eq + Ord + Hash + Debug> Key for T {}
