//! Exchange disciplines and ring-search policies.

use serde::{Deserialize, Serialize};

/// Whether the ring search prefers shorter or longer rings when several are
/// feasible.
///
/// The paper calls these `2-N-way` (try pairwise first, then grow) and
/// `N-2-way` (aggressively look for the longest feasible ring first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RingPreference {
    /// Prefer the shortest feasible ring (pairwise before 3-way, ...).
    ShorterFirst,
    /// Prefer the longest feasible ring within the size bound.
    LongerFirst,
}

/// Parameters of one ring search: the bound on ring size and the preference
/// order among feasible rings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SearchPolicy {
    max_ring: usize,
    preference: RingPreference,
}

impl SearchPolicy {
    /// Creates a policy bounded to rings of at most `max_ring` peers.
    ///
    /// # Panics
    ///
    /// Panics if `max_ring < 2`: the smallest exchange is pairwise.
    #[must_use]
    pub fn new(max_ring: usize, preference: RingPreference) -> Self {
        assert!(max_ring >= 2, "the smallest exchange ring has 2 peers");
        SearchPolicy {
            max_ring,
            preference,
        }
    }

    /// Pairwise-only search.
    #[must_use]
    pub fn pairwise_only() -> Self {
        SearchPolicy::new(2, RingPreference::ShorterFirst)
    }

    /// The maximum number of peers in a ring.
    #[must_use]
    pub fn max_ring(&self) -> usize {
        self.max_ring
    }

    /// The maximum search depth in the request tree (`max_ring - 1`
    /// predecessors, since the provider itself is the root).
    #[must_use]
    pub fn max_depth(&self) -> usize {
        self.max_ring - 1
    }

    /// The preference order among feasible rings.
    #[must_use]
    pub fn preference(&self) -> RingPreference {
        self.preference
    }
}

impl Default for SearchPolicy {
    /// The paper's default: rings of up to five peers, shorter rings first.
    fn default() -> Self {
        SearchPolicy::new(5, RingPreference::ShorterFirst)
    }
}

/// The four upload disciplines evaluated in the paper's simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExchangePolicy {
    /// No exchange mechanism: requests are served first-come, first-served.
    NoExchange,
    /// Only pairwise (2-way) exchanges are prioritised.
    Pairwise,
    /// `N-2-way`: look for the longest feasible ring (up to `max_ring`)
    /// before falling back to shorter rings.
    PreferLonger {
        /// Upper bound on the ring size.
        max_ring: usize,
    },
    /// `2-N-way`: look for the shortest feasible ring first, growing only
    /// when no shorter ring exists.
    PreferShorter {
        /// Upper bound on the ring size.
        max_ring: usize,
    },
}

impl ExchangePolicy {
    /// The paper's `5-2-way` configuration.
    #[must_use]
    pub fn five_two_way() -> Self {
        ExchangePolicy::PreferLonger { max_ring: 5 }
    }

    /// The paper's `2-5-way` configuration.
    #[must_use]
    pub fn two_five_way() -> Self {
        ExchangePolicy::PreferShorter { max_ring: 5 }
    }

    /// Whether this discipline performs exchanges at all.
    #[must_use]
    pub fn allows_exchange(&self) -> bool {
        !matches!(self, ExchangePolicy::NoExchange)
    }

    /// The corresponding ring-search policy, or `None` for
    /// [`ExchangePolicy::NoExchange`].
    #[must_use]
    pub fn search_policy(&self) -> Option<SearchPolicy> {
        match self {
            ExchangePolicy::NoExchange => None,
            ExchangePolicy::Pairwise => Some(SearchPolicy::pairwise_only()),
            ExchangePolicy::PreferLonger { max_ring } => {
                Some(SearchPolicy::new(*max_ring, RingPreference::LongerFirst))
            }
            ExchangePolicy::PreferShorter { max_ring } => {
                Some(SearchPolicy::new(*max_ring, RingPreference::ShorterFirst))
            }
        }
    }

    /// A short, stable label used in figure output
    /// (`no-exchange`, `pairwise`, `5-2-way`, `2-5-way`, ...).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            ExchangePolicy::NoExchange => "no-exchange".to_string(),
            ExchangePolicy::Pairwise => "pairwise".to_string(),
            ExchangePolicy::PreferLonger { max_ring } => format!("{max_ring}-2-way"),
            ExchangePolicy::PreferShorter { max_ring } => format!("2-{max_ring}-way"),
        }
    }

    /// The four disciplines plotted in Figures 4, 5, 9, 10 and 12.
    #[must_use]
    pub fn paper_set() -> Vec<ExchangePolicy> {
        vec![
            ExchangePolicy::NoExchange,
            ExchangePolicy::Pairwise,
            ExchangePolicy::five_two_way(),
            ExchangePolicy::two_five_way(),
        ]
    }
}

impl Default for ExchangePolicy {
    fn default() -> Self {
        ExchangePolicy::two_five_way()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_policy_depth_is_ring_minus_one() {
        let p = SearchPolicy::new(5, RingPreference::LongerFirst);
        assert_eq!(p.max_ring(), 5);
        assert_eq!(p.max_depth(), 4);
        assert_eq!(p.preference(), RingPreference::LongerFirst);
    }

    #[test]
    fn pairwise_only_policy() {
        let p = SearchPolicy::pairwise_only();
        assert_eq!(p.max_ring(), 2);
        assert_eq!(p.max_depth(), 1);
    }

    #[test]
    #[should_panic(expected = "smallest exchange ring")]
    fn ring_bound_below_two_panics() {
        let _ = SearchPolicy::new(1, RingPreference::ShorterFirst);
    }

    #[test]
    fn policy_labels_match_paper_notation() {
        assert_eq!(ExchangePolicy::NoExchange.label(), "no-exchange");
        assert_eq!(ExchangePolicy::Pairwise.label(), "pairwise");
        assert_eq!(ExchangePolicy::five_two_way().label(), "5-2-way");
        assert_eq!(ExchangePolicy::two_five_way().label(), "2-5-way");
        assert_eq!(
            ExchangePolicy::PreferLonger { max_ring: 7 }.label(),
            "7-2-way"
        );
    }

    #[test]
    fn search_policies_derive_from_disciplines() {
        assert!(ExchangePolicy::NoExchange.search_policy().is_none());
        assert!(!ExchangePolicy::NoExchange.allows_exchange());

        let p = ExchangePolicy::Pairwise.search_policy().unwrap();
        assert_eq!(p.max_ring(), 2);

        let p = ExchangePolicy::five_two_way().search_policy().unwrap();
        assert_eq!(p.max_ring(), 5);
        assert_eq!(p.preference(), RingPreference::LongerFirst);

        let p = ExchangePolicy::two_five_way().search_policy().unwrap();
        assert_eq!(p.preference(), RingPreference::ShorterFirst);
    }

    #[test]
    fn paper_set_has_four_disciplines() {
        let set = ExchangePolicy::paper_set();
        assert_eq!(set.len(), 4);
        assert_eq!(set[0], ExchangePolicy::NoExchange);
    }
}
