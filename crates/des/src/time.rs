//! Virtual time types.
//!
//! The simulator keeps time as an integer number of microseconds.  Integer
//! time gives the event queue a total order (no NaN), makes runs bit-exact
//! reproducible across platforms, and is precise enough for the paper's
//! scenario (block transfers lasting hundreds of seconds).

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

use serde::{Deserialize, Serialize};

const MICROS_PER_SEC: u64 = 1_000_000;

/// A point in virtual time, measured from the start of the simulation.
///
/// `SimTime` is an absolute instant; the difference of two instants is a
/// [`SimDuration`].
///
/// # Example
///
/// ```
/// use des::{SimDuration, SimTime};
///
/// let t0 = SimTime::ZERO;
/// let t1 = t0 + SimDuration::from_secs_f64(1.5);
/// assert_eq!((t1 - t0).as_secs_f64(), 1.5);
/// assert!(t1 > t0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time (the difference of two [`SimTime`] instants).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Largest representable instant; useful as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from whole microseconds since the simulation start.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant from (possibly fractional) seconds since the start.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large to represent.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(secs_to_micros(secs))
    }

    /// Microseconds since the simulation start.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the simulation start as a floating point number.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Minutes since the simulation start, the unit the paper's figures use.
    #[must_use]
    pub fn as_minutes_f64(self) -> f64 {
        self.as_secs_f64() / 60.0
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier` is
    /// actually later than `self`.
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration, `None` on overflow.
    #[must_use]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from whole microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration from (possibly fractional) seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large to represent.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(secs_to_micros(secs))
    }

    /// Creates a duration from whole seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * MICROS_PER_SEC)
    }

    /// The duration in whole microseconds.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration in seconds as a floating point number.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// The duration in minutes, the unit the paper's figures use.
    #[must_use]
    pub fn as_minutes_f64(self) -> f64 {
        self.as_secs_f64() / 60.0
    }

    /// Multiplies the duration by a non-negative scalar.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or NaN, or the result overflows.
    #[must_use]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "duration scale factor must be finite and non-negative, got {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

fn secs_to_micros(secs: f64) -> u64 {
    assert!(
        secs.is_finite() && secs >= 0.0,
        "simulated seconds must be finite and non-negative, got {secs}"
    );
    let micros = secs * MICROS_PER_SEC as f64;
    assert!(
        micros <= u64::MAX as f64,
        "simulated time {secs}s overflows the clock"
    );
    micros.round() as u64
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        assert!(
            self.0 >= rhs.0,
            "cannot subtract a later SimTime from an earlier one ({self:?} - {rhs:?})"
        );
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        assert!(self.0 >= rhs.0, "duration subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        assert!(self.0 >= rhs.0, "duration subtraction underflow");
        self.0 -= rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl From<SimDuration> for SimTime {
    fn from(d: SimDuration) -> Self {
        SimTime(d.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert_eq!(SimTime::default(), SimTime::ZERO);
        assert_eq!(SimDuration::default(), SimDuration::ZERO);
    }

    #[test]
    fn seconds_round_trip() {
        let t = SimTime::from_secs_f64(123.456789);
        assert!((t.as_secs_f64() - 123.456789).abs() < 1e-6);
    }

    #[test]
    fn arithmetic() {
        let t0 = SimTime::from_secs_f64(10.0);
        let d = SimDuration::from_secs_f64(2.5);
        let t1 = t0 + d;
        assert_eq!(t1 - t0, d);
        assert_eq!(t1.as_secs_f64(), 12.5);
    }

    #[test]
    fn minutes_conversion() {
        let d = SimDuration::from_secs(120);
        assert_eq!(d.as_minutes_f64(), 2.0);
    }

    #[test]
    fn saturating_since_is_zero_for_future_reference() {
        let early = SimTime::from_secs_f64(1.0);
        let late = SimTime::from_secs_f64(5.0);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(4));
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(5));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_seconds_panic() {
        let _ = SimTime::from_secs_f64(-1.0);
    }

    #[test]
    #[should_panic(expected = "later SimTime")]
    fn time_subtraction_underflow_panics() {
        let _ = SimTime::from_secs_f64(1.0) - SimTime::from_secs_f64(2.0);
    }

    #[test]
    fn ordering_matches_micros() {
        assert!(SimTime::from_micros(5) < SimTime::from_micros(6));
        assert!(SimTime::MAX > SimTime::from_secs_f64(1e12));
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_secs_f64(1.5).to_string(), "1.500s");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(SimTime::MAX
            .checked_add(SimDuration::from_micros(1))
            .is_none());
        assert_eq!(
            SimTime::ZERO.checked_add(SimDuration::from_secs(1)),
            Some(SimTime::from_secs_f64(1.0))
        );
    }
}
