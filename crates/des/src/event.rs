//! Timestamped event queue with stable ordering.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// A min-priority queue of timestamped events.
///
/// Events scheduled for the same instant are delivered in insertion order
/// (FIFO), which keeps simulations deterministic when many events share a
/// timestamp.
///
/// # Example
///
/// ```
/// use des::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs_f64(1.0), "first");
/// q.push(SimTime::from_secs_f64(1.0), "second");
/// q.push(SimTime::ZERO, "zeroth");
///
/// assert_eq!(q.pop().unwrap().1, "zeroth");
/// assert_eq!(q.pop().unwrap().1, "first");
/// assert_eq!(q.pop().unwrap().1, "second");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (time, seq) wins.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with space for `capacity` events.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The timestamp of the earliest pending event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// The earliest pending event and its timestamp, without removing it.
    ///
    /// Lets a driver collect a *batch* of simultaneous events (pop while the
    /// head matches a predicate) — the basis of the simulator's sharded
    /// scheduling, which fans same-timestamp work out to worker threads and
    /// then applies it in this queue's deterministic FIFO order.
    #[must_use]
    pub fn peek(&self) -> Option<(SimTime, &E)> {
        self.heap.peek().map(|e| (e.time, &e.event))
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue contains no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// The sequence number the next [`EventQueue::push`] will assign.
    ///
    /// Checkpointing must preserve this counter exactly: same-timestamp
    /// delivery order is decided by `(time, seq)`, so a restored queue that
    /// restarted the counter could interleave new events differently.
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }
}

impl<E: Clone> EventQueue<E> {
    /// All pending entries as `(time, seq, event)`, sorted by `(time, seq)`
    /// — i.e. in the exact order [`EventQueue::pop`] would deliver them.
    ///
    /// The canonical order makes checkpoint bytes independent of the heap's
    /// internal layout, so checkpoint → restore → checkpoint is byte-stable.
    #[must_use]
    pub fn sorted_entries(&self) -> Vec<(SimTime, u64, E)> {
        let mut entries: Vec<(SimTime, u64, E)> = self
            .heap
            .iter()
            .map(|e| (e.time, e.seq, e.event.clone()))
            .collect();
        entries.sort_by_key(|(time, seq, _)| (*time, *seq));
        entries
    }
}

impl<E> EventQueue<E> {
    /// Rebuilds a queue from checkpointed entries and the saved sequence
    /// counter.  Entries keep their original `seq` values, so FIFO order
    /// among same-timestamp events survives the round trip.
    #[must_use]
    pub fn from_parts(entries: Vec<(SimTime, u64, E)>, next_seq: u64) -> Self {
        let heap = entries
            .into_iter()
            .map(|(time, seq, event)| Entry { time, seq, event })
            .collect();
        EventQueue { heap, next_seq }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Extend<(SimTime, E)> for EventQueue<E> {
    fn extend<T: IntoIterator<Item = (SimTime, E)>>(&mut self, iter: T) {
        for (time, event) in iter {
            self.push(time, event);
        }
    }
}

impl<E> FromIterator<(SimTime, E)> for EventQueue<E> {
    fn from_iter<T: IntoIterator<Item = (SimTime, E)>>(iter: T) -> Self {
        let mut q = EventQueue::new();
        q.extend(iter);
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs_f64(3.0), 3);
        q.push(SimTime::from_secs_f64(1.0), 1);
        q.push(SimTime::from_secs_f64(2.0), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs_f64(1.0);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs_f64(5.0), "x");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs_f64(5.0)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peek_exposes_the_head_event_without_removing_it() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs_f64(2.0), "late");
        q.push(SimTime::from_secs_f64(1.0), "early");
        assert_eq!(q.peek(), Some((SimTime::from_secs_f64(1.0), &"early")));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().1, "early");
        assert_eq!(q.peek(), Some((SimTime::from_secs_f64(2.0), &"late")));
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.peek_time(), None);
        assert!(q.pop().is_none());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn collect_from_iterator() {
        let q: EventQueue<u8> = vec![
            (SimTime::from_secs_f64(2.0), 2u8),
            (SimTime::from_secs_f64(1.0), 1u8),
        ]
        .into_iter()
        .collect();
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs_f64(1.0)));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn pop_order_is_nondecreasing(times in proptest::collection::vec(0u64..1_000_000, 0..200)) {
                let mut q = EventQueue::new();
                for (i, t) in times.iter().enumerate() {
                    q.push(SimTime::from_micros(*t), i);
                }
                let mut last = SimTime::ZERO;
                while let Some((t, _)) = q.pop() {
                    prop_assert!(t >= last);
                    last = t;
                }
            }

            #[test]
            fn all_events_are_delivered(times in proptest::collection::vec(0u64..1_000, 0..100)) {
                let mut q = EventQueue::new();
                for (i, t) in times.iter().enumerate() {
                    q.push(SimTime::from_micros(*t), i);
                }
                let mut seen: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
                seen.sort_unstable();
                prop_assert_eq!(seen, (0..times.len()).collect::<Vec<_>>());
            }
        }
    }
}
