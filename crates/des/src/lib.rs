//! Discrete-event simulation engine.
//!
//! This crate provides the substrate on which the file-sharing simulator in
//! `exchange-sim` is built:
//!
//! * [`SimTime`] / [`SimDuration`] — a virtual clock with microsecond
//!   resolution and total ordering (no floating-point comparison pitfalls in
//!   the event queue).
//! * [`EventQueue`] — a priority queue of timestamped events with stable FIFO
//!   ordering for simultaneous events.
//! * [`Scheduler`] — a convenience wrapper combining a clock and an event
//!   queue, the usual main-loop driver.
//! * [`DetRng`] — a deterministic, seedable random-number source with named
//!   sub-streams so that independent parts of a simulation draw from
//!   independent, reproducible streams.
//!
//! # Example
//!
//! ```
//! use des::{EventQueue, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping, Pong }
//!
//! let mut q = EventQueue::new();
//! q.push(SimTime::from_secs_f64(2.0), Ev::Pong);
//! q.push(SimTime::from_secs_f64(1.0), Ev::Ping);
//!
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, Ev::Ping);
//! assert_eq!(t.as_secs_f64(), 1.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod event;
mod rng;
mod scheduler;
mod time;

pub use event::EventQueue;
pub use rng::DetRng;
pub use scheduler::Scheduler;
pub use time::{SimDuration, SimTime};
