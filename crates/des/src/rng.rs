//! Deterministic random number generation with named sub-streams.

use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic random source for simulations.
///
/// All randomness in a simulation should flow through a single `DetRng` (or
/// sub-streams derived from it) so that a run is fully reproducible from its
/// seed.  Sub-streams derived with [`DetRng::stream`] are independent of the
/// draw order on the parent, which keeps experiments comparable when one
/// component changes how much randomness it consumes.
///
/// # Example
///
/// ```
/// use des::DetRng;
///
/// let mut a = DetRng::seed_from(42);
/// let mut b = DetRng::seed_from(42);
/// assert_eq!(a.gen_range(0..100), b.gen_range(0..100));
///
/// // Sub-streams with different labels are decorrelated but reproducible.
/// let mut s1 = a.stream("placement");
/// let mut s2 = b.stream("placement");
/// assert_eq!(s1.gen_range(0..1_000_000), s2.gen_range(0..1_000_000));
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    seed: u64,
    inner: StdRng,
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn seed_from(seed: u64) -> Self {
        DetRng {
            seed,
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// The seed this generator (or stream) was created with.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent, reproducible sub-stream identified by `label`.
    ///
    /// The sub-stream depends only on the parent's seed and the label, not on
    /// how many values have already been drawn from the parent.
    #[must_use]
    pub fn stream(&self, label: &str) -> DetRng {
        let mixed = mix64(self.seed ^ fnv1a(label.as_bytes()));
        DetRng::seed_from(mixed)
    }

    /// Derives an independent sub-stream identified by a numeric index,
    /// e.g. one stream per peer.
    #[must_use]
    pub fn indexed_stream(&self, label: &str, index: u64) -> DetRng {
        let mixed = mix64(self.seed ^ fnv1a(label.as_bytes()) ^ mix64(index.wrapping_add(1)));
        DetRng::seed_from(mixed)
    }

    /// Samples a value uniformly from `range`.
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        self.inner.gen_range(range)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Samples a uniform floating point number in `[0, 1)`.
    pub fn gen_unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Chooses a uniformly random element of `slice`, or `None` if empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        slice.choose(&mut self.inner)
    }

    /// Chooses the index of an element with probability proportional to
    /// `weights[i]`.  Returns `None` if `weights` is empty or all zero.
    pub fn choose_weighted_index(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
        if !(total > 0.0) {
            return None;
        }
        let mut target = self.gen_unit() * total;
        for (i, w) in weights.iter().copied().enumerate() {
            if w <= 0.0 {
                continue;
            }
            if target < w {
                return Some(i);
            }
            target -= w;
        }
        // Floating point slack: fall back to the last positive weight.
        weights.iter().rposition(|w| *w > 0.0)
    }

    /// Shuffles `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        slice.shuffle(&mut self.inner);
    }

    /// Samples up to `n` distinct elements of `slice` (uniformly, without
    /// replacement), in random order.
    pub fn sample<'a, T>(&mut self, slice: &'a [T], n: usize) -> Vec<&'a T> {
        let mut idx: Vec<usize> = (0..slice.len()).collect();
        self.shuffle(&mut idx);
        idx.truncate(n.min(slice.len()));
        idx.into_iter().map(|i| &slice[i]).collect()
    }
}

impl RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

/// 64-bit finalizer from SplitMix64; decorrelates structured seed inputs.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a hash of a byte string, used to turn stream labels into seed material.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = DetRng::seed_from(7);
        let mut b = DetRng::seed_from(7);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::seed_from(1);
        let mut b = DetRng::seed_from(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn streams_are_independent_of_parent_draws() {
        let mut a = DetRng::seed_from(99);
        let b = DetRng::seed_from(99);
        // Consume some values from `a` only.
        for _ in 0..10 {
            a.next_u64();
        }
        let mut sa = a.stream("foo");
        let mut sb = b.stream("foo");
        assert_eq!(sa.next_u64(), sb.next_u64());
    }

    #[test]
    fn distinct_labels_give_distinct_streams() {
        let root = DetRng::seed_from(5);
        let mut x = root.stream("alpha");
        let mut y = root.stream("beta");
        assert_ne!(x.next_u64(), y.next_u64());
    }

    #[test]
    fn indexed_streams_differ_by_index() {
        let root = DetRng::seed_from(5);
        let mut x = root.indexed_stream("peer", 0);
        let mut y = root.indexed_stream("peer", 1);
        assert_ne!(x.next_u64(), y.next_u64());
    }

    #[test]
    fn weighted_choice_respects_zero_weights() {
        let mut rng = DetRng::seed_from(11);
        let weights = [0.0, 0.0, 1.0, 0.0];
        for _ in 0..50 {
            assert_eq!(rng.choose_weighted_index(&weights), Some(2));
        }
        assert_eq!(rng.choose_weighted_index(&[]), None);
        assert_eq!(rng.choose_weighted_index(&[0.0, 0.0]), None);
    }

    #[test]
    fn weighted_choice_is_roughly_proportional() {
        let mut rng = DetRng::seed_from(13);
        let weights = [1.0, 3.0];
        let mut counts = [0usize; 2];
        for _ in 0..10_000 {
            counts[rng.choose_weighted_index(&weights).unwrap()] += 1;
        }
        let ratio = counts[1] as f64 / counts[0] as f64;
        assert!((2.0..4.0).contains(&ratio), "ratio {ratio} should be near 3");
    }

    #[test]
    fn sample_without_replacement_is_distinct() {
        let mut rng = DetRng::seed_from(17);
        let items: Vec<u32> = (0..100).collect();
        let picked = rng.sample(&items, 10);
        assert_eq!(picked.len(), 10);
        let mut vals: Vec<u32> = picked.into_iter().copied().collect();
        vals.sort_unstable();
        vals.dedup();
        assert_eq!(vals.len(), 10);
        // Asking for more than available returns everything.
        assert_eq!(rng.sample(&items, 1_000).len(), 100);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = DetRng::seed_from(23);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        // Out-of-range probabilities are clamped rather than panicking.
        assert!(rng.gen_bool(2.0));
        assert!(!rng.gen_bool(-1.0));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn gen_range_stays_in_bounds(seed in 0u64..1_000, lo in 0i64..100, width in 1i64..100) {
                let mut rng = DetRng::seed_from(seed);
                let hi = lo + width;
                for _ in 0..20 {
                    let v = rng.gen_range(lo..hi);
                    prop_assert!(v >= lo && v < hi);
                }
            }

            #[test]
            fn weighted_index_only_picks_positive_weights(
                seed in 0u64..1_000,
                weights in proptest::collection::vec(0.0f64..5.0, 1..20),
            ) {
                let mut rng = DetRng::seed_from(seed);
                if let Some(i) = rng.choose_weighted_index(&weights) {
                    prop_assert!(weights[i] > 0.0);
                } else {
                    prop_assert!(weights.iter().all(|w| *w <= 0.0));
                }
            }
        }
    }
}
