//! Deterministic random number generation with named sub-streams.
//!
//! Self-contained (no external RNG crate): the generator is xoshiro256++,
//! seeded through SplitMix64, which is plenty for simulation workloads and
//! keeps the whole workspace building without network access.

use std::ops::{Range, RangeInclusive};

/// A deterministic random source for simulations.
///
/// All randomness in a simulation should flow through a single `DetRng` (or
/// sub-streams derived from it) so that a run is fully reproducible from its
/// seed.  Sub-streams derived with [`DetRng::stream`] are independent of the
/// draw order on the parent, which keeps experiments comparable when one
/// component changes how much randomness it consumes.
///
/// # Example
///
/// ```
/// use des::DetRng;
///
/// let mut a = DetRng::seed_from(42);
/// let mut b = DetRng::seed_from(42);
/// assert_eq!(a.gen_range(0..100), b.gen_range(0..100));
///
/// // Sub-streams with different labels are decorrelated but reproducible.
/// let mut s1 = a.stream("placement");
/// let mut s2 = b.stream("placement");
/// assert_eq!(s1.gen_range(0..1_000_000), s2.gen_range(0..1_000_000));
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    seed: u64,
    state: [u64; 4],
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn seed_from(seed: u64) -> Self {
        // Expand the seed into four independent words with SplitMix64, the
        // initialisation recommended by the xoshiro authors.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            mix64(sm)
        };
        let state = [next(), next(), next(), next()];
        DetRng { seed, state }
    }

    /// The seed this generator (or stream) was created with.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The current internal xoshiro256++ state, for checkpointing.
    ///
    /// Together with [`DetRng::seed`] this captures the generator exactly:
    /// [`DetRng::from_state`] rebuilds a generator that continues the same
    /// sequence bit-for-bit and derives the same sub-streams.
    #[must_use]
    pub fn state(&self) -> [u64; 4] {
        self.state
    }

    /// Rebuilds a generator from a checkpointed `(seed, state)` pair.
    ///
    /// The `seed` determines stream derivation ([`DetRng::stream`] and
    /// friends hash it, not the state); the `state` resumes the draw
    /// sequence exactly where [`DetRng::state`] captured it.
    #[must_use]
    pub fn from_state(seed: u64, state: [u64; 4]) -> Self {
        DetRng { seed, state }
    }

    /// Derives an independent, reproducible sub-stream identified by `label`.
    ///
    /// The sub-stream depends only on the parent's seed and the label, not on
    /// how many values have already been drawn from the parent.
    #[must_use]
    pub fn stream(&self, label: &str) -> DetRng {
        let mixed = mix64(self.seed ^ fnv1a(label.as_bytes()));
        DetRng::seed_from(mixed)
    }

    /// Derives an independent sub-stream identified by a numeric index,
    /// e.g. one stream per peer.
    #[must_use]
    pub fn indexed_stream(&self, label: &str, index: u64) -> DetRng {
        let mixed = mix64(self.seed ^ fnv1a(label.as_bytes()) ^ mix64(index.wrapping_add(1)));
        DetRng::seed_from(mixed)
    }

    /// Next 64 random bits (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Uniform draw from `[0, n)`; `n` must be positive.
    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_unit() < p.clamp(0.0, 1.0)
    }

    /// Samples a uniform floating point number in `[0, 1)`.
    pub fn gen_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }

    /// Chooses a uniformly random element of `slice`, or `None` if empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            let index = self.below(slice.len() as u64) as usize;
            Some(&slice[index])
        }
    }

    /// Chooses the index of an element with probability proportional to
    /// `weights[i]`.  Returns `None` if `weights` is empty or all zero.
    pub fn choose_weighted_index(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
        if total.is_nan() || total <= 0.0 {
            return None;
        }
        let mut target = self.gen_unit() * total;
        for (i, w) in weights.iter().copied().enumerate() {
            if w <= 0.0 {
                continue;
            }
            if target < w {
                return Some(i);
            }
            target -= w;
        }
        // Floating point slack: fall back to the last positive weight.
        weights.iter().rposition(|w| *w > 0.0)
    }

    /// Shuffles `slice` in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Samples up to `n` distinct elements of `slice` (uniformly, without
    /// replacement), in random order.
    pub fn sample<'a, T>(&mut self, slice: &'a [T], n: usize) -> Vec<&'a T> {
        let mut idx: Vec<usize> = (0..slice.len()).collect();
        self.shuffle(&mut idx);
        idx.truncate(n.min(slice.len()));
        idx.into_iter().map(|i| &slice[i]).collect()
    }
}

/// Types [`DetRng::gen_range`] can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[lo, hi]` (both bounds inclusive).
    fn sample_inclusive(rng: &mut DetRng, lo: Self, hi: Self) -> Self;
    /// Samples uniformly from `[lo, hi)`.
    fn sample_exclusive(rng: &mut DetRng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive(rng: &mut DetRng, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    // Only reachable for the full u64/i64/u128-like domain.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }

            fn sample_exclusive(rng: &mut DetRng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    /// For floats the upper bound carries measure zero; a degenerate
    /// `lo..=lo` range returns `lo` rather than panicking.
    fn sample_inclusive(rng: &mut DetRng, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "cannot sample from empty range");
        if lo == hi {
            return lo;
        }
        Self::sample_exclusive(rng, lo, hi)
    }

    fn sample_exclusive(rng: &mut DetRng, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample from empty range");
        lo + rng.gen_unit() * (hi - lo)
    }
}

/// Range shapes accepted by [`DetRng::gen_range`].
pub trait SampleRange<T: SampleUniform> {
    /// Samples one value uniformly from the range.
    fn sample_from(self, rng: &mut DetRng) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from(self, rng: &mut DetRng) -> T {
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from(self, rng: &mut DetRng) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// 64-bit finalizer from SplitMix64; decorrelates structured seed inputs.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a hash of a byte string, used to turn stream labels into seed material.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = DetRng::seed_from(7);
        let mut b = DetRng::seed_from(7);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::seed_from(1);
        let mut b = DetRng::seed_from(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn streams_are_independent_of_parent_draws() {
        let mut a = DetRng::seed_from(99);
        let b = DetRng::seed_from(99);
        // Consume some values from `a` only.
        for _ in 0..10 {
            a.next_u64();
        }
        let mut sa = a.stream("foo");
        let mut sb = b.stream("foo");
        assert_eq!(sa.next_u64(), sb.next_u64());
    }

    #[test]
    fn distinct_labels_give_distinct_streams() {
        let root = DetRng::seed_from(5);
        let mut x = root.stream("alpha");
        let mut y = root.stream("beta");
        assert_ne!(x.next_u64(), y.next_u64());
    }

    #[test]
    fn indexed_streams_differ_by_index() {
        let root = DetRng::seed_from(5);
        let mut x = root.indexed_stream("peer", 0);
        let mut y = root.indexed_stream("peer", 1);
        assert_ne!(x.next_u64(), y.next_u64());
    }

    #[test]
    fn inclusive_and_exclusive_ranges() {
        let mut rng = DetRng::seed_from(3);
        for _ in 0..1_000 {
            let v = rng.gen_range(5u32..=7);
            assert!((5..=7).contains(&v));
            let w = rng.gen_range(-3i64..3);
            assert!((-3..3).contains(&w));
            let f = rng.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
        }
        // Inclusive bounds are actually reachable.
        let mut seen = [false; 3];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..=2)] = true;
        }
        assert_eq!(seen, [true; 3]);
        // Degenerate inclusive ranges are valid for floats too.
        assert_eq!(rng.gen_range(1.5f64..=1.5), 1.5);
        assert_eq!(rng.gen_range(4u32..=4), 4);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = DetRng::seed_from(8);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(
            buf.iter().any(|b| *b != 0),
            "13 random bytes are not all zero"
        );
    }

    #[test]
    fn weighted_choice_respects_zero_weights() {
        let mut rng = DetRng::seed_from(11);
        let weights = [0.0, 0.0, 1.0, 0.0];
        for _ in 0..50 {
            assert_eq!(rng.choose_weighted_index(&weights), Some(2));
        }
        assert_eq!(rng.choose_weighted_index(&[]), None);
        assert_eq!(rng.choose_weighted_index(&[0.0, 0.0]), None);
    }

    #[test]
    fn weighted_choice_is_roughly_proportional() {
        let mut rng = DetRng::seed_from(13);
        let weights = [1.0, 3.0];
        let mut counts = [0usize; 2];
        for _ in 0..10_000 {
            counts[rng.choose_weighted_index(&weights).unwrap()] += 1;
        }
        let ratio = counts[1] as f64 / counts[0] as f64;
        assert!(
            (2.0..4.0).contains(&ratio),
            "ratio {ratio} should be near 3"
        );
    }

    #[test]
    fn sample_without_replacement_is_distinct() {
        let mut rng = DetRng::seed_from(17);
        let items: Vec<u32> = (0..100).collect();
        let picked = rng.sample(&items, 10);
        assert_eq!(picked.len(), 10);
        let mut vals: Vec<u32> = picked.into_iter().copied().collect();
        vals.sort_unstable();
        vals.dedup();
        assert_eq!(vals.len(), 10);
        // Asking for more than available returns everything.
        assert_eq!(rng.sample(&items, 1_000).len(), 100);
    }

    #[test]
    fn shuffle_permutes_all_elements() {
        let mut rng = DetRng::seed_from(19);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(
            xs, sorted,
            "a 50-element shuffle is overwhelmingly unlikely to be identity"
        );
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = DetRng::seed_from(23);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        // Out-of-range probabilities are clamped rather than panicking.
        assert!(rng.gen_bool(2.0));
        assert!(!rng.gen_bool(-1.0));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn gen_range_stays_in_bounds(seed in 0u64..1_000, lo in 0i64..100, width in 1i64..100) {
                let mut rng = DetRng::seed_from(seed);
                let hi = lo + width;
                for _ in 0..20 {
                    let v = rng.gen_range(lo..hi);
                    prop_assert!(v >= lo && v < hi);
                }
            }

            #[test]
            fn weighted_index_only_picks_positive_weights(
                seed in 0u64..1_000,
                weights in proptest::collection::vec(0.0f64..5.0, 1..20),
            ) {
                let mut rng = DetRng::seed_from(seed);
                if let Some(i) = rng.choose_weighted_index(&weights) {
                    prop_assert!(weights[i] > 0.0);
                } else {
                    prop_assert!(weights.iter().all(|w| *w <= 0.0));
                }
            }
        }
    }
}
