//! A clock + event queue bundle that drives a simulation main loop.

use crate::{EventQueue, SimDuration, SimTime};

/// Combines the virtual clock with an [`EventQueue`].
///
/// The owning simulation repeatedly calls [`Scheduler::next`] and handles the
/// returned events; the scheduler advances the clock to each event's
/// timestamp.  Events may be scheduled while handling other events.
///
/// # Example
///
/// ```
/// use des::{Scheduler, SimDuration};
///
/// #[derive(Debug)]
/// enum Ev { Tick(u32) }
///
/// let mut sched = Scheduler::new();
/// sched.schedule_in(SimDuration::from_secs(1), Ev::Tick(1));
/// sched.schedule_in(SimDuration::from_secs(2), Ev::Tick(2));
///
/// let mut ticks = Vec::new();
/// while let Some(ev) = sched.next() {
///     match ev { Ev::Tick(n) => ticks.push(n) }
/// }
/// assert_eq!(ticks, vec![1, 2]);
/// assert_eq!(sched.now().as_secs_f64(), 2.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Scheduler<E> {
    now: SimTime,
    queue: EventQueue<E>,
    horizon: Option<SimTime>,
    delivered: u64,
}

impl<E> Scheduler<E> {
    /// Creates a scheduler with the clock at [`SimTime::ZERO`] and no horizon.
    #[must_use]
    pub fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            horizon: None,
            delivered: 0,
        }
    }

    /// Creates a scheduler that stops delivering events after `horizon`.
    ///
    /// Events scheduled past the horizon stay in the queue but are never
    /// returned by [`Scheduler::next`].
    #[must_use]
    pub fn with_horizon(horizon: SimTime) -> Self {
        Scheduler {
            horizon: Some(horizon),
            ..Scheduler::new()
        }
    }

    /// The current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The configured stop time, if any.
    #[must_use]
    pub fn horizon(&self) -> Option<SimTime> {
        self.horizon
    }

    /// Number of events delivered so far.
    #[must_use]
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of events still pending (including any past the horizon).
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time: an event cannot fire in the
    /// past.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule an event in the past (now={}, at={})",
            self.now,
            at
        );
        self.queue.push(at, event);
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Schedules `event` to fire immediately (at the current time, after any
    /// events already queued for the current time).
    pub fn schedule_now(&mut self, event: E) {
        self.queue.push(self.now, event);
    }

    /// The next pending event and its timestamp, without delivering it or
    /// advancing the clock.  Events beyond the horizon are still reported —
    /// only [`Scheduler::next`] enforces the horizon.
    #[must_use]
    pub fn peek(&self) -> Option<(SimTime, &E)> {
        self.queue.peek()
    }

    /// Read access to the underlying queue, for checkpointing.
    #[must_use]
    pub fn queue(&self) -> &EventQueue<E> {
        &self.queue
    }

    /// Rebuilds a scheduler from checkpointed parts: the clock, the horizon,
    /// the delivered-event counter, and the (already restored) queue.
    #[must_use]
    pub fn from_parts(
        now: SimTime,
        horizon: Option<SimTime>,
        delivered: u64,
        queue: EventQueue<E>,
    ) -> Self {
        Scheduler {
            now,
            queue,
            horizon,
            delivered,
        }
    }

    /// Delivers the next event, advancing the clock to its timestamp.
    ///
    /// Returns `None` when the queue is empty or the next event lies beyond
    /// the configured horizon (in which case the clock is advanced to the
    /// horizon).
    #[allow(clippy::should_implement_trait)] // not an Iterator: advances the clock
    pub fn next(&mut self) -> Option<E> {
        let next_time = self.queue.peek_time()?;
        if let Some(h) = self.horizon {
            if next_time > h {
                self.now = h;
                return None;
            }
        }
        let (time, event) = self.queue.pop().expect("peeked entry must exist");
        self.now = time;
        self.delivered += 1;
        Some(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_with_events() {
        let mut s = Scheduler::new();
        s.schedule_in(SimDuration::from_secs(5), "a");
        assert_eq!(s.now(), SimTime::ZERO);
        assert_eq!(s.next(), Some("a"));
        assert_eq!(s.now(), SimTime::from_secs_f64(5.0));
        assert_eq!(s.delivered(), 1);
    }

    #[test]
    fn horizon_stops_delivery() {
        let mut s = Scheduler::with_horizon(SimTime::from_secs_f64(10.0));
        s.schedule_at(SimTime::from_secs_f64(5.0), 1);
        s.schedule_at(SimTime::from_secs_f64(15.0), 2);
        assert_eq!(s.next(), Some(1));
        assert_eq!(s.next(), None);
        assert_eq!(s.now(), SimTime::from_secs_f64(10.0));
        assert_eq!(s.pending(), 1);
    }

    #[test]
    fn peek_reports_the_head_without_advancing_the_clock() {
        let mut s = Scheduler::new();
        s.schedule_in(SimDuration::from_secs(3), "x");
        assert_eq!(s.peek(), Some((SimTime::from_secs_f64(3.0), &"x")));
        assert_eq!(s.now(), SimTime::ZERO);
        assert_eq!(s.pending(), 1);
        assert_eq!(s.next(), Some("x"));
        assert_eq!(s.peek(), None);
    }

    #[test]
    fn schedule_now_runs_at_current_time() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_secs_f64(1.0), "later");
        assert_eq!(s.next(), Some("later"));
        s.schedule_now("now");
        assert_eq!(s.next(), Some("now"));
        assert_eq!(s.now(), SimTime::from_secs_f64(1.0));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_secs_f64(2.0), ());
        let _ = s.next();
        s.schedule_at(SimTime::from_secs_f64(1.0), ());
    }

    #[test]
    fn events_scheduled_during_handling_are_delivered() {
        let mut s = Scheduler::new();
        s.schedule_in(SimDuration::from_secs(1), 0u32);
        let mut seen = Vec::new();
        while let Some(ev) = s.next() {
            seen.push(ev);
            if ev < 3 {
                s.schedule_in(SimDuration::from_secs(1), ev + 1);
            }
        }
        assert_eq!(seen, vec![0, 1, 2, 3]);
        assert_eq!(s.now(), SimTime::from_secs_f64(4.0));
    }

    #[test]
    fn empty_scheduler_returns_none_without_advancing() {
        let mut s: Scheduler<()> = Scheduler::new();
        assert_eq!(s.next(), None);
        assert_eq!(s.now(), SimTime::ZERO);
    }
}
