//! # p2p-exchange
//!
//! Facade crate for the reproduction of *"Exchange-Based Incentive Mechanisms
//! for Peer-to-Peer File Sharing"* (Anagnostakis & Greenwald, ICDCS 2004).
//!
//! This crate re-exports the workspace members so that examples and
//! integration tests can use a single dependency:
//!
//! * [`des`] — discrete-event simulation engine
//! * [`bloom`] — Bloom filters and request-tree summaries
//! * [`metrics`] — statistics collection
//! * [`workload`] — content catalog and popularity model
//! * [`netsim`] — access-link capacity and transfer model
//! * [`exchange`] — the exchange mechanism itself (the paper's contribution)
//! * [`credit`] — baseline incentive mechanisms
//! * [`sim`] — the full file-sharing simulator and experiment runners
//!
//! # Quickstart
//!
//! ```
//! use p2p_exchange::sim::{ExchangeDiscipline, SimConfig, Simulation};
//!
//! let mut config = SimConfig::quick_test();
//! config.discipline = ExchangeDiscipline::PreferShorter { max_ring: 5 };
//! let report = Simulation::new(config, 42).run();
//! assert!(report.completed_downloads() > 0);
//! ```

#![forbid(unsafe_code)]

pub use bloom;
pub use credit;
pub use des;
pub use exchange;
pub use metrics;
pub use netsim;
pub use sim;
pub use workload;
