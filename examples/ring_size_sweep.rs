//! How much do higher-order exchange rings add over pairwise swaps?
//!
//! A scaled-down version of the paper's Figure 6 experiment: sweep the
//! maximum ring size N for both search orders (one scenario run, parallel
//! across configurations and seeds) and report the download-time
//! differentiation between sharing and non-sharing peers.
//!
//! ```text
//! cargo run --release --example ring_size_sweep
//! ```

use p2p_exchange::metrics::Table;
use p2p_exchange::sim::experiment::ring_size_scenario;
use p2p_exchange::sim::{PeerClass, SimConfig};

fn main() {
    let mut base = SimConfig::quick_test();
    base.num_peers = 60;
    base.sim_duration_s = 8_000.0;
    base.max_pending_objects = 6;
    base.link.upload_kbps = 40.0;

    let sizes = [2usize, 3, 4, 5, 6];
    let grid = ring_size_scenario(&base, &sizes).seeds(33..35).run();

    let fmt = |v: Option<p2p_exchange::sim::Aggregate>| {
        v.map_or("n/a".to_string(), |a| format!("{:.1}", a.mean))
    };
    let mut table = Table::new(vec![
        "max ring N",
        "N-2-way sharing",
        "N-2-way non-sharing",
        "2-N-way sharing",
        "2-N-way non-sharing",
    ]);
    for &n in &sizes {
        let longer = if n == 2 {
            "pairwise".to_string()
        } else {
            format!("{n}-2-way")
        };
        let shorter = if n == 2 {
            "pairwise".to_string()
        } else {
            format!("2-{n}-way")
        };
        let mean = |discipline: &str, class: PeerClass| {
            grid.aggregate_where(&[("discipline", discipline)], |r| {
                r.mean_download_time_min(class)
            })
        };
        table.add_row(vec![
            n.to_string(),
            fmt(mean(&longer, PeerClass::Sharing)),
            fmt(mean(&longer, PeerClass::NonSharing)),
            fmt(mean(&shorter, PeerClass::Sharing)),
            fmt(mean(&shorter, PeerClass::NonSharing)),
        ]);
    }
    println!(
        "Effect of the maximum exchange ring size ({} peers, 40 kbit/s upload)\n",
        base.num_peers
    );
    println!("{table}");
    println!("N = 2 is pairwise-only; allowing 3-way rings improves the sharers' advantage,");
    println!("while much larger rings add little — the paper's Figure 6 observation.");
}
