//! How much do higher-order exchange rings add over pairwise swaps?
//!
//! A scaled-down version of the paper's Figure 6 experiment: sweep the
//! maximum ring size N for both search orders and report the download-time
//! differentiation between sharing and non-sharing peers.
//!
//! ```text
//! cargo run --release --example ring_size_sweep
//! ```

use p2p_exchange::metrics::Table;
use p2p_exchange::sim::experiment::ring_size_sweep;
use p2p_exchange::sim::SimConfig;

fn main() {
    let mut base = SimConfig::quick_test();
    base.num_peers = 60;
    base.sim_duration_s = 8_000.0;
    base.max_pending_objects = 6;
    base.link.upload_kbps = 40.0;

    let sizes = [2usize, 3, 4, 5, 6];
    let points = ring_size_sweep(&base, &sizes, 33);

    let fmt = |v: Option<f64>| v.map_or("n/a".to_string(), |x| format!("{x:.1}"));
    let mut table = Table::new(vec![
        "max ring N",
        "N-2-way sharing",
        "N-2-way non-sharing",
        "2-N-way sharing",
        "2-N-way non-sharing",
    ]);
    for &n in &sizes {
        let get = |longer: bool| points.iter().find(|p| p.max_ring == n && p.prefer_longer == longer);
        let longer = get(true).expect("point exists");
        let shorter = get(false).expect("point exists");
        table.add_row(vec![
            n.to_string(),
            fmt(longer.sharing_min),
            fmt(longer.non_sharing_min),
            fmt(shorter.sharing_min),
            fmt(shorter.non_sharing_min),
        ]);
    }
    println!("Effect of the maximum exchange ring size ({} peers, 40 kbit/s upload)\n", base.num_peers);
    println!("{table}");
    println!("N = 2 is pairwise-only; allowing 3-way rings improves the sharers' advantage,");
    println!("while much larger rings add little — the paper's Figure 6 observation.");
}
