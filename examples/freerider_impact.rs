//! How does the share of free-riders affect everyone's download times?
//!
//! A scaled-down version of the paper's Figure 12 experiment: sweep the
//! fraction of non-sharing peers and compare the no-exchange baseline with
//! the 2-5-way exchange discipline — one scenario run, parallel across the
//! grid and seeds.
//!
//! ```text
//! cargo run --release --example freerider_impact
//! ```

use p2p_exchange::exchange::ExchangePolicy;
use p2p_exchange::metrics::Table;
use p2p_exchange::sim::experiment::freerider_scenario;
use p2p_exchange::sim::{PeerClass, SimConfig};

fn main() {
    let mut base = SimConfig::quick_test();
    base.num_peers = 60;
    base.sim_duration_s = 8_000.0;
    base.max_pending_objects = 6;
    base.link.upload_kbps = 40.0;

    let policies = [ExchangePolicy::NoExchange, ExchangePolicy::two_five_way()];
    let fractions = [0.1, 0.3, 0.5, 0.7, 0.9];
    let grid = freerider_scenario(&base, &policies, &fractions)
        .seeds(21..23)
        .run();

    let fmt = |v: Option<p2p_exchange::sim::Aggregate>| {
        v.map_or("n/a".to_string(), |a| format!("{:.1}", a.mean))
    };
    let mut table = Table::new(vec![
        "non-sharing fraction",
        "no-exchange (min)",
        "2-5-way sharing (min)",
        "2-5-way non-sharing (min)",
    ]);
    for &fraction in &fractions {
        let fraction_label = format!("{fraction}");
        let mean = |policy: &ExchangePolicy, class: PeerClass| {
            grid.aggregate_where(
                &[
                    ("freerider_fraction", fraction_label.as_str()),
                    ("discipline", &policy.label()),
                ],
                |r| r.mean_download_time_min(class),
            )
        };
        let baseline = &ExchangePolicy::NoExchange;
        let exchange = &ExchangePolicy::two_five_way();
        table.add_row(vec![
            format!("{fraction:.1}"),
            fmt(mean(baseline, PeerClass::Sharing)
                .or_else(|| mean(baseline, PeerClass::NonSharing))),
            fmt(mean(exchange, PeerClass::Sharing)),
            fmt(mean(exchange, PeerClass::NonSharing)),
        ]);
    }
    println!(
        "Impact of the free-rider fraction ({} peers, 40 kbit/s upload)\n",
        base.num_peers
    );
    println!("{table}");
    println!("Whatever the population mix, peers that share download faster than peers that");
    println!("do not — the persistent gap the paper reports in Figure 12.");
}
