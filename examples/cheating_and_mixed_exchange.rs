//! Section III-B end to end: the closed-form countermeasure models, the
//! mixed object+capacity exchange of Table I / Figure 3, and — through the
//! first-class behavior API — a full simulation sweep of the adversarial
//! populations against each countermeasure.
//!
//! ```text
//! cargo run --release --example cheating_and_mixed_exchange
//! ```

use p2p_exchange::exchange::cheat::{
    max_cheater_gain_bytes, middleman_attack_succeeds, EncryptedBlock, Mediator, WindowedExchange,
};
use p2p_exchange::exchange::mixed::{plan_mixed_exchange, pure_exchange_rates, PeerSpec};
use p2p_exchange::exchange::ExchangePolicy;
use p2p_exchange::metrics::Table;
use p2p_exchange::sim::experiment::cheating_scenario;
use p2p_exchange::sim::{BehaviorKind, BehaviorMix, Protection, SchedulerKind, SimConfig};

fn main() {
    closed_form_countermeasures();
    mixed_exchange_plan();
    behavior_mix_sweep();
}

fn closed_form_countermeasures() {
    println!("== Windowed block validation ==");
    let block = 256 * 1024u64;
    let mut exchange = WindowedExchange::new(block, 8);
    println!(
        "start: window={} blocks, cheater exposure={} KiB",
        exchange.window(),
        exchange.exposure_bytes() / 1024
    );
    for round in 1..=4 {
        exchange.on_round_validated();
        println!(
            "after {round} validated rounds: window={} blocks, exposure={} KiB, rate at 200ms RTT = {:.0} kB/s (slot caps at 1.25 kB/s)",
            exchange.window(),
            exchange.exposure_bytes() / 1024,
            exchange.effective_rate(0.2, 1_250.0) / 1000.0
        );
    }
    exchange.on_invalid_block();
    println!(
        "after one junk block: window collapses to {}",
        exchange.window()
    );
    println!(
        "worst-case cheater gain with window 8: {} KiB\n",
        max_cheater_gain_bytes(block, 8) / 1024
    );

    println!("== Trusted mediator vs the freeriding middleman ==");
    let a_to_b = vec![EncryptedBlock {
        origin: 1u32,
        intended_recipient: 2,
        valid: true,
    }];
    let b_to_a = vec![EncryptedBlock {
        origin: 2u32,
        intended_recipient: 1,
        valid: true,
    }];
    let outcome = Mediator::default().mediate(&a_to_b, &b_to_a);
    println!("peer 1 can decrypt: {}", outcome.can_decrypt(&1));
    println!("peer 2 can decrypt: {}", outcome.can_decrypt(&2));
    println!(
        "relaying middleman (peer 9) can decrypt: {}",
        outcome.can_decrypt(&9)
    );
    println!(
        "middleman attack succeeds without mediation: {}, with mediation: {}\n",
        middleman_attack_succeeds(false),
        middleman_attack_succeeds(true)
    );
}

fn mixed_exchange_plan() {
    println!("== Mixed object + capacity exchange (Table I / Figure 3) ==");
    let specs = vec![
        PeerSpec {
            peer: "A",
            upload_capacity: 10.0,
            has: vec![],
            wants: vec!['x'],
        },
        PeerSpec {
            peer: "B",
            upload_capacity: 5.0,
            has: vec!['x'],
            wants: vec!['y'],
        },
        PeerSpec {
            peer: "C",
            upload_capacity: 10.0,
            has: vec!['y'],
            wants: vec!['x'],
        },
        PeerSpec {
            peer: "D",
            upload_capacity: 10.0,
            has: vec!['y'],
            wants: vec!['x'],
        },
    ];
    let pure = pure_exchange_rates(&specs);
    let plan = plan_mixed_exchange(&specs).expect("Table I structure");
    for spec in &specs {
        println!(
            "peer {}: pure exchange rate {:.0}, mixed exchange rate {:.0}",
            spec.peer,
            pure[&spec.peer],
            plan.download_rate_of(&spec.peer)
        );
    }
    println!("\nThe mixed plan serves every peer at least as well as the pure ring exchange,");
    println!("and peers A and D — excluded from any ring — now get served too.\n");
}

/// The behavior-mix sweep: every Section III-B population against every
/// countermeasure, in one `Scenario` grid.
fn behavior_mix_sweep() {
    println!("== Behavior mixes vs countermeasures (simulated) ==");
    let mut base = SimConfig::quick_test();
    base.num_peers = 40;
    base.sim_duration_s = 6_000.0;
    base.discipline = ExchangePolicy::two_five_way();
    base.scheduler = SchedulerKind::ExchangePriority;

    let adversarial = BehaviorMix::weighted([
        (BehaviorKind::Honest, 0.5),
        (BehaviorKind::FreeRider, 0.15),
        (BehaviorKind::JunkSender, 0.1),
        (BehaviorKind::ParticipationCheater, 0.1),
        (BehaviorKind::Middleman, 0.15),
    ]);
    let grid = cheating_scenario(&base, &[adversarial], &Protection::all_basic())
        .seeds([11])
        .run();

    let mut table = Table::new(vec![
        "protection",
        "honest (MB/peer)",
        "free-rider",
        "junk-sender",
        "particip-cheater",
        "middleman",
        "cheats caught",
    ]);
    for row in grid.rows() {
        let report = &row.report;
        let usable = |kind: BehaviorKind| {
            report
                .mean_usable_mb_per_peer(kind)
                .map_or("n/a".to_string(), |mb| format!("{mb:.1}"))
        };
        table.add_row(vec![
            grid.point(row.point)
                .value("protection")
                .unwrap_or("?")
                .to_string(),
            usable(BehaviorKind::Honest),
            usable(BehaviorKind::FreeRider),
            usable(BehaviorKind::JunkSender),
            usable(BehaviorKind::ParticipationCheater),
            usable(BehaviorKind::Middleman),
            report.cheat_detections().to_string(),
        ]);
    }
    println!(
        "usable megabytes downloaded per peer, by behavior ({} peers, seed 11)\n",
        base.num_peers
    );
    println!("{table}");
    println!("Unprotected, the middleman and junk sender out-earn the passive free-rider.");
    println!("Windowed validation multiplies junk detections; mediation zeroes the");
    println!("middleman's usable bytes — it relays ciphertext it can never read.");
}
