//! Exchange incentives vs. the credit-style baselines of Section II.
//!
//! Runs the same workload under (a) no incentive, (b) eMule-style pairwise
//! credit, (c) BitTorrent-style tit-for-tat and (d) the paper's 2-5-way
//! exchange discipline, and compares how well each rewards sharing peers.
//!
//! ```text
//! cargo run --release --example baseline_comparison
//! ```

use p2p_exchange::exchange::ExchangePolicy;
use p2p_exchange::metrics::Table;
use p2p_exchange::sim::{FallbackOrder, PeerClass, SimConfig, Simulation};

fn main() {
    let mut base = SimConfig::quick_test();
    base.num_peers = 60;
    base.sim_duration_s = 8_000.0;
    base.max_pending_objects = 6;
    base.link.upload_kbps = 40.0;

    // (label, discipline, fallback ordering of non-exchange requests)
    let setups = [
        ("fifo (no incentive)", ExchangePolicy::NoExchange, FallbackOrder::Fifo),
        ("emule credit", ExchangePolicy::NoExchange, FallbackOrder::EmuleCredit),
        ("tit-for-tat", ExchangePolicy::NoExchange, FallbackOrder::TitForTat),
        ("2-5-way exchange", ExchangePolicy::two_five_way(), FallbackOrder::Fifo),
    ];

    let mut table = Table::new(vec![
        "incentive mechanism",
        "sharing (min)",
        "non-sharing (min)",
        "non-sharing / sharing",
    ]);
    for (label, discipline, fallback) in setups {
        let mut config = base.clone();
        config.discipline = discipline;
        config.fallback = fallback;
        let report = Simulation::new(config, 55).run();
        let sharing = report.mean_download_time_min(PeerClass::Sharing);
        let non_sharing = report.mean_download_time_min(PeerClass::NonSharing);
        let ratio = report.download_time_ratio();
        table.add_row(vec![
            label.to_string(),
            sharing.map_or("n/a".into(), |v| format!("{v:.1}")),
            non_sharing.map_or("n/a".into(), |v| format!("{v:.1}")),
            ratio.map_or("n/a".into(), |v| format!("{v:.2}")),
        ]);
    }
    println!("Incentive mechanisms compared ({} peers, 40 kbit/s upload, seed 55)\n", base.num_peers);
    println!("{table}");
    println!("The exchange discipline rewards sharing peers directly with simultaneous");
    println!("transfers; the credit baselines only modulate queueing order, which the paper");
    println!("argues (Section II) provides much weaker differentiation.");
}
