//! Exchange incentives vs. the scheduler baselines of Section II.
//!
//! Runs the same workload under every pluggable upload scheduler — FIFO,
//! eMule-style credit, BitTorrent-style tit-for-tat, KaZaA-style
//! participation level and exchange-priority ordering — plus the paper's
//! 2-5-way ring discipline, and compares how well each rewards sharing
//! peers.  The whole comparison is one parallel multi-seed scenario run.
//!
//! ```text
//! cargo run --release --example baseline_comparison
//! ```

use p2p_exchange::exchange::ExchangePolicy;
use p2p_exchange::metrics::Table;
use p2p_exchange::sim::{Axis, PeerClass, Scenario, SchedulerKind, SimConfig, SimReport};

fn main() {
    let mut base = SimConfig::quick_test();
    base.num_peers = 60;
    base.sim_duration_s = 8_000.0;
    base.max_pending_objects = 6;
    base.link.upload_kbps = 40.0;
    // Isolate the schedulers: no exchange rings unless a setup turns them on.
    base.discipline = ExchangePolicy::NoExchange;

    let seeds = 55..58;
    let grid = Scenario::from(base.clone())
        .vary(
            Axis::custom("incentive")
                .with_variant("fifo (no incentive)", |c: &mut SimConfig| {
                    c.scheduler = SchedulerKind::Fifo;
                })
                .with_variant("emule credit", |c: &mut SimConfig| {
                    c.scheduler = SchedulerKind::EmuleCredit;
                })
                .with_variant("tit-for-tat", |c: &mut SimConfig| {
                    c.scheduler = SchedulerKind::TitForTat;
                })
                .with_variant("participation level", |c: &mut SimConfig| {
                    c.scheduler = SchedulerKind::ParticipationLevel;
                })
                .with_variant("exchange-priority queue", |c: &mut SimConfig| {
                    c.scheduler = SchedulerKind::ExchangePriority;
                })
                .with_variant("2-5-way exchange rings", |c: &mut SimConfig| {
                    c.discipline = ExchangePolicy::two_five_way();
                }),
        )
        .seeds(seeds.clone())
        .run();

    let mut table = Table::new(vec![
        "incentive mechanism",
        "sharing (min)",
        "non-sharing (min)",
        "non-sharing / sharing",
    ]);
    let fmt = |v: Option<p2p_exchange::sim::Aggregate>| {
        v.map_or("n/a".into(), |a| format!("{:.1}±{:.1}", a.mean, a.ci95))
    };
    for point in grid.points() {
        table.add_row(vec![
            point.label.replace("incentive=", ""),
            fmt(grid.aggregate(point.index, |r| {
                r.mean_download_time_min(PeerClass::Sharing)
            })),
            fmt(grid.aggregate(point.index, |r| {
                r.mean_download_time_min(PeerClass::NonSharing)
            })),
            fmt(grid.aggregate(point.index, SimReport::download_time_ratio)),
        ]);
    }
    println!(
        "Incentive mechanisms compared ({} peers, 40 kbit/s upload, seeds {}..{})\n",
        base.num_peers, seeds.start, seeds.end
    );
    println!("{table}");
    println!("The exchange discipline rewards sharing peers directly with simultaneous");
    println!("transfers; the queue-order baselines (including the trivially subvertible");
    println!("participation level) only modulate waiting, which the paper argues");
    println!("(Section II) provides much weaker differentiation.");
}
