//! Population dynamics: the same system with and without churn, plus a
//! catastrophe (the top uploaders vanish mid-run) and a flash crowd, over a
//! heterogeneous fast/medium/slow population — printing the per-class
//! fairness quantiles the paper's Fig. 7/8 are built from.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example population_dynamics
//! ```

use p2p_exchange::metrics::Table;
use p2p_exchange::sim::{
    CapacityClass, CatastropheConfig, ChurnConfig, ClassMix, FlashCrowdConfig, Scenario,
    SessionEnd, SimConfig,
};

fn main() {
    // Quick-test profile so the example finishes in seconds; the population
    // machinery is identical at paper scale.
    let mut config = SimConfig::quick_test();
    config.num_peers = 60;
    config.sim_duration_s = 6_000.0;
    // The top 4 uploaders vanish at t=3000s; 20 peers rush a brand-new
    // object released at t=2000s with 2 seed holders.
    config.catastrophe = Some(CatastropheConfig {
        at_s: 3_000.0,
        top_k: 4,
    });
    config.flash_crowd = Some(FlashCrowdConfig {
        at_s: 2_000.0,
        requesters: 20,
        seed_holders: 2,
    });

    // Axis 1: a static population vs session churn (mean session 2.5 h,
    // mean downtime 10 min).  Axis 2 is implicit: every run draws its peers
    // from a fast/medium/slow capacity mix.
    let grid = Scenario::from(config)
        .churn([
            None,
            Some(ChurnConfig {
                mean_session_s: 9_000.0,
                mean_downtime_s: 600.0,
            }),
        ])
        .classes([ClassMix::weighted([
            (CapacityClass::Fast, 0.25),
            (CapacityClass::Medium, 0.5),
            (CapacityClass::Slow, 0.25),
        ])])
        .seeds([42])
        .run();

    let mut table = Table::new(vec![
        "churn",
        "class",
        "p10 (min)",
        "p50 (min)",
        "p90 (min)",
        "downloads",
    ]);
    for row in grid.rows() {
        let report = &row.report;
        let churn = grid.point(row.point).value("churn").unwrap_or("?");
        for class in report.observed_capacity_classes() {
            let quantile = |p: f64| {
                report
                    .capacity_download_percentile(class, p)
                    .map_or_else(|| "-".to_string(), |v| format!("{v:.1}"))
            };
            table.add_row(vec![
                churn.to_string(),
                class.label().to_string(),
                quantile(0.10),
                quantile(0.50),
                quantile(0.90),
                report.completed_downloads().to_string(),
            ]);
        }
        let departures = report
            .session_end_counts()
            .get(&SessionEnd::PeerDeparted)
            .copied()
            .unwrap_or(0);
        println!(
            "churn={churn}: {} sessions, {departures} cut by a departure",
            report.total_sessions()
        );
    }

    println!("\nPer-class download-time quantiles (fairness CDF summary)\n");
    println!("{table}");
    println!("These are the distributions behind the paper's Fig. 7/8 fairness");
    println!("story; at paper scale the class gap opens up — churn, the");
    println!("catastrophe and the flash crowd all cut sessions mid-flight.");
}
