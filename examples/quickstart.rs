//! Quickstart: sweep the four exchange disciplines with the scenario engine
//! and print the headline numbers the paper is about — how much better
//! sharing peers do than free-riders.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use p2p_exchange::metrics::Table;
use p2p_exchange::sim::{ExchangeDiscipline, PeerClass, Scenario, SimConfig};

fn main() {
    // A scaled-down system (the paper's Table II uses 200 peers and 20 MB
    // objects; this example uses the quick-test profile so it finishes in
    // seconds).  Swap in `SimConfig::paper_defaults()` for the full setup.
    let mut config = SimConfig::quick_test();
    config.num_peers = 60;
    config.sim_duration_s = 6_000.0;

    // One builder call: 4 disciplines x 1 seed, executed in parallel.
    let grid = Scenario::from(config.clone())
        .disciplines([
            ExchangeDiscipline::NoExchange,
            ExchangeDiscipline::Pairwise,
            ExchangeDiscipline::five_two_way(),
            ExchangeDiscipline::two_five_way(),
        ])
        .seeds([42])
        .run();

    let mut table = Table::new(vec![
        "discipline",
        "sharing (min)",
        "non-sharing (min)",
        "ratio",
        "exchange sessions",
        "rings",
    ]);

    for row in grid.rows() {
        let report = &row.report;
        let sharing = report
            .mean_download_time_min(PeerClass::Sharing)
            .unwrap_or(f64::NAN);
        let non_sharing = report
            .mean_download_time_min(PeerClass::NonSharing)
            .unwrap_or(f64::NAN);
        table.add_row(vec![
            grid.point(row.point)
                .value("discipline")
                .unwrap_or("?")
                .to_string(),
            format!("{sharing:.1}"),
            format!("{non_sharing:.1}"),
            format!("{:.2}", non_sharing / sharing),
            format!("{:.0}%", report.exchange_session_fraction() * 100.0),
            report.total_rings().to_string(),
        ]);
    }

    println!(
        "Mean object download time by peer class ({} peers, seed 42)\n",
        config.num_peers
    );
    println!("{table}");
    println!("A ratio above 1 means free-riders wait longer than sharing peers —");
    println!("the incentive the exchange mechanism is designed to create.");
}
